// OnlineNode (egress pacing + spill) and MultiSignalNode (bandwidth
// sharing across device clients) integration tests.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/core/online_node.h"
#include "adaedge/core/store_io.h"
#include "adaedge/data/generators.h"

namespace adaedge::core {
namespace {

constexpr size_t kSegmentLength = 1024;

std::vector<std::vector<double>> MakeSegments(size_t count,
                                              uint64_t seed = 5) {
  data::CbfStream stream(seed);
  std::vector<std::vector<double>> segments(count);
  for (auto& s : segments) {
    s.resize(kSegmentLength);
    stream.Fill(s);
  }
  return segments;
}

TEST(OnlineNodeTest, GenerousLinkEgressesEverythingImmediately) {
  OnlineNodeConfig config;
  config.ingest_points_per_sec = 100000.0;
  config.bandwidth_bytes_per_sec = 8e6;  // 10x the raw rate
  OnlineNode node(config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeSegments(50);
  for (size_t i = 0; i < segments.size(); ++i) {
    double now = static_cast<double>(i + 1) * kSegmentLength / 100000.0;
    auto report = node.Ingest(i, now, segments[i]);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report.value().spilled);
  }
  EXPECT_EQ(node.queued_segments(), 0u);
  EXPECT_EQ(node.spilled_segments(), 0u);
  EXPECT_EQ(node.egressed_segments(), segments.size());
}

TEST(OnlineNodeTest, EgressNeverExceedsLinkCapacity) {
  OnlineNodeConfig config;
  config.ingest_points_per_sec = 200000.0;
  config.bandwidth_bytes_per_sec = 3e5;  // tight: R ~ 0.19
  OnlineNode node(config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeSegments(100);
  double now = 0.0;
  for (size_t i = 0; i < segments.size(); ++i) {
    now = static_cast<double>(i + 1) * kSegmentLength / 200000.0;
    ASSERT_TRUE(node.Ingest(i, now, segments[i]).ok());
    EXPECT_TRUE(node.network().WithinCapacity(now)) << "segment " << i;
  }
  // The selector compresses below R, so the queue must stay bounded.
  EXPECT_LE(node.queued_segments(), 4u);
}

TEST(OnlineNodeTest, DeadLinkSpillsToDiskInsteadOfDropping) {
  OnlineNodeConfig config;
  config.ingest_points_per_sec = 100000.0;
  config.bandwidth_bytes_per_sec = 0.0;  // link down
  config.derive_target_ratio = false;    // keep compressing regardless
  config.selector.target_ratio = 0.2;
  config.compressed_capacity_segments = 8;
  config.spill_path = ::testing::TempDir() + "/spill.seg";
  OnlineNode node(config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeSegments(40);
  size_t spill_events = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    auto report = node.Ingest(i, i * 0.01, segments[i]);
    ASSERT_TRUE(report.ok());
    if (report.value().spilled) ++spill_events;
  }
  EXPECT_EQ(node.egressed_segments(), 0u);
  EXPECT_EQ(node.queued_segments(), 8u);
  EXPECT_EQ(node.spilled_segments(), segments.size() - 8);
  EXPECT_GT(spill_events, 0u);
  ASSERT_TRUE(node.Close().ok());
  // Spilled data is intact on disk: every segment decodes.
  auto loaded = LoadSegmentsFromFile(config.spill_path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), segments.size() - 8);
  for (const Segment& segment : loaded.value()) {
    EXPECT_TRUE(segment.Materialize().ok());
  }
  std::remove(config.spill_path.c_str());
}

TEST(MultiSignalNodeTest, SharesBandwidthProportionally) {
  MultiSignalNode node(8e5, TargetSpec::AggAccuracy(query::AggKind::kSum));
  int fast = node.AddSignal("vibration", 200000.0);
  int slow = node.AddSignal("temperature", 50000.0);
  EXPECT_EQ(node.signal_count(), 2u);
  // Equal weights: both signals get the same ratio
  // R = B / (8 * total rate) = 8e5 / (8 * 2.5e5) = 0.4.
  EXPECT_NEAR(node.TargetRatioOf(fast).value(), 0.4, 1e-9);
  EXPECT_NEAR(node.TargetRatioOf(slow).value(), 0.4, 1e-9);
}

TEST(MultiSignalNodeTest, WeightsSkewTheSplit) {
  MultiSignalNode node(8e5, TargetSpec::AggAccuracy(query::AggKind::kSum));
  int critical = node.AddSignal("critical", 100000.0, /*weight=*/3.0);
  int bulk = node.AddSignal("bulk", 100000.0, /*weight=*/1.0);
  // critical gets 3/4 of the link: R = 6e5 / 8e5 per its rate...
  EXPECT_NEAR(node.TargetRatioOf(critical).value(),
              (8e5 * 0.75) / (8.0 * 100000.0), 1e-9);
  EXPECT_NEAR(node.TargetRatioOf(bulk).value(),
              (8e5 * 0.25) / (8.0 * 100000.0), 1e-9);
  EXPECT_GT(node.TargetRatioOf(critical).value(),
            node.TargetRatioOf(bulk).value());
}

TEST(MultiSignalNodeTest, RemovalReallocatesBandwidth) {
  MultiSignalNode node(8e5, TargetSpec::AggAccuracy(query::AggKind::kSum));
  int a = node.AddSignal("a", 100000.0);
  int b = node.AddSignal("b", 100000.0);
  double before = node.TargetRatioOf(a).value();
  ASSERT_TRUE(node.RemoveSignal(b).ok());
  double after = node.TargetRatioOf(a).value();
  EXPECT_NEAR(after, 2.0 * before, 1e-9);  // inherited b's share
  EXPECT_FALSE(node.TargetRatioOf(b).ok());
  EXPECT_FALSE(node.Ingest(b, 0, 0.0, std::vector<double>(8, 1.0)).ok());
}

TEST(MultiSignalNodeTest, RemovalRedistributesByWeightTimesRate) {
  // Mixed weights and rates: after a removal every survivor's share is
  // bandwidth * weight * rate / total', so the ratios pin exactly.
  const double kBandwidth = 8e5;
  MultiSignalNode node(kBandwidth,
                       TargetSpec::AggAccuracy(query::AggKind::kSum));
  int a = node.AddSignal("a", 2e5, /*weight=*/1.0);
  int b = node.AddSignal("b", 1e5, /*weight=*/2.0);
  int c = node.AddSignal("c", 1e5, /*weight=*/1.0);
  ASSERT_TRUE(node.RemoveSignal(c).ok());
  // total' = 1*2e5 + 2*1e5 = 4e5.
  const double total = 1.0 * 2e5 + 2.0 * 1e5;
  EXPECT_NEAR(node.TargetRatioOf(a).value(),
              sim::TargetRatio(kBandwidth * 1.0 * 2e5 / total, 2e5),
              1e-12);
  EXPECT_NEAR(node.TargetRatioOf(b).value(),
              sim::TargetRatio(kBandwidth * 2.0 * 1e5 / total, 1e5),
              1e-12);
}

TEST(MultiSignalNodeTest, LastSignalInheritsTheWholeLink) {
  MultiSignalNode node(8e5, TargetSpec::AggAccuracy(query::AggKind::kSum));
  int keep = node.AddSignal("keep", 1e5);
  int drop1 = node.AddSignal("drop1", 3e5);
  int drop2 = node.AddSignal("drop2", 4e5, /*weight=*/2.0);
  ASSERT_TRUE(node.RemoveSignal(drop1).ok());
  ASSERT_TRUE(node.RemoveSignal(drop2).ok());
  EXPECT_EQ(node.signal_count(), 1u);
  EXPECT_NEAR(node.TargetRatioOf(keep).value(),
              sim::TargetRatio(8e5, 1e5), 1e-12);
}

TEST(MultiSignalNodeTest, ZeroWeightSignalGetsNoBandwidth) {
  MultiSignalNode node(8e5, TargetSpec::AggAccuracy(query::AggKind::kSum));
  int muted = node.AddSignal("muted", 1e5, /*weight=*/0.0);
  int active = node.AddSignal("active", 1e5, /*weight=*/1.0);
  EXPECT_DOUBLE_EQ(node.TargetRatioOf(muted).value(), 0.0);
  EXPECT_NEAR(node.TargetRatioOf(active).value(),
              sim::TargetRatio(8e5, 1e5), 1e-12);
  // Removing the only weighted signal leaves total weight*rate at 0:
  // Reallocate bails out and the muted signal keeps its previous target
  // instead of dividing by zero.
  ASSERT_TRUE(node.RemoveSignal(active).ok());
  EXPECT_DOUBLE_EQ(node.TargetRatioOf(muted).value(), 0.0);
}

TEST(MultiSignalNodeTest, AllZeroWeightsKeepInitialTargets) {
  MultiSignalNode node(8e5, TargetSpec::AggAccuracy(query::AggKind::kSum));
  int a = node.AddSignal("a", 1e5, /*weight=*/0.0);
  int b = node.AddSignal("b", 1e5, /*weight=*/0.0);
  // total weight*rate = 0: no reallocation ever ran, so both signals
  // keep the construction-time target of 1.0.
  EXPECT_DOUBLE_EQ(node.TargetRatioOf(a).value(), 1.0);
  EXPECT_DOUBLE_EQ(node.TargetRatioOf(b).value(), 1.0);
}

TEST(MultiSignalNodeTest, SignalsSelectIndependently) {
  // A highly compressible signal and a noisy one behind one link: each
  // signal's bandit converges on its own best codec.
  MultiSignalNode node(4e5, TargetSpec::AggAccuracy(query::AggKind::kSum));
  int smooth = node.AddSignal("smooth", 100000.0);
  int noisy = node.AddSignal("noisy", 100000.0);

  data::LowEntropyStream smooth_stream(3);
  data::CbfStream noisy_stream(9);
  std::vector<double> segment(kSegmentLength);
  bool any_failed = false;
  for (uint64_t i = 0; i < 120; ++i) {
    smooth_stream.Fill(segment);
    auto s = node.Ingest(smooth, i, i * 0.01, segment);
    noisy_stream.Fill(segment);
    auto n = node.Ingest(noisy, i, i * 0.01, segment);
    if (!s.ok() || !n.ok()) any_failed = true;
  }
  EXPECT_FALSE(any_failed);
  // Shared link: R = 4e5/(8*2e5) = 0.25. The repetitive signal compresses
  // losslessly (deflate-class achieves ~0.03); noisy CBF cannot reach
  // 0.25 losslessly and must be lossy.
  auto probe = [&](int id, data::Stream& stream) {
    stream.Fill(segment);
    return node.Ingest(id, 999, 10.0, segment).value();
  };
  EXPECT_FALSE(probe(smooth, smooth_stream).used_lossy);
  EXPECT_TRUE(probe(noisy, noisy_stream).used_lossy);
}

TEST(MultiSignalNodeTest, ConcurrentIngestAndRemoveNoUseAfterFree) {
  // Regression: Ingest used to release the node lock and call Process on
  // a raw selector pointer, so a concurrent RemoveSignal destroyed the
  // selector mid-compression. Hammer both paths; removed signals must
  // fail with NotFound, never crash. Run under TSan/ASan in CI.
  MultiSignalNode node(8e5, TargetSpec::AggAccuracy(query::AggKind::kSum));
  constexpr int kIngestThreads = 3;
  constexpr int kRounds = 60;
  std::atomic<bool> stop{false};
  std::vector<std::atomic<int>> initial(4);
  for (size_t i = 0; i < initial.size(); ++i) {
    initial[i].store(node.AddSignal("s" + std::to_string(i), 100000.0));
  }

  std::vector<std::thread> ingesters;
  std::atomic<size_t> ok_count{0};
  std::atomic<size_t> not_found{0};
  for (int t = 0; t < kIngestThreads; ++t) {
    ingesters.emplace_back([&, t] {
      data::CbfStream stream(700 + t);
      std::vector<double> segment(256);
      uint64_t id = 0;
      while (!stop.load()) {
        stream.Fill(segment);
        // Mix live and possibly-removed signal ids (the churn thread
        // races these slots on purpose).
        int signal = initial[id % initial.size()].load();
        auto outcome = node.Ingest(signal, id, id * 0.001, segment);
        ++id;
        if (outcome.ok()) {
          ++ok_count;
        } else {
          EXPECT_EQ(outcome.status().code(), util::StatusCode::kNotFound);
          ++not_found;
        }
      }
    });
  }

  // Churn: remove and re-add signals while ingestion runs.
  for (int round = 0; round < kRounds; ++round) {
    size_t slot = static_cast<size_t>(round) % initial.size();
    (void)node.RemoveSignal(initial[slot].load());
    initial[slot].store(
        node.AddSignal("r" + std::to_string(round), 100000.0));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& thread : ingesters) thread.join();

  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_EQ(node.signal_count(), initial.size());
}

TEST(OnlineNodeTest, ConcurrentIngestReportsEgressPerSegment) {
  // report.egressed is a statement about THIS segment. Under concurrent
  // ingest the per-call reports and the node counters must reconcile:
  // every segment either egressed, is still queued, or spilled.
  OnlineNodeConfig config;
  config.ingest_points_per_sec = 100000.0;
  config.bandwidth_bytes_per_sec = 4e5;
  config.compressed_capacity_segments = 64;
  OnlineNode node(config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50;
  std::atomic<size_t> egressed_reports{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      data::CbfStream stream(800 + t);
      std::vector<double> segment(kSegmentLength);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        stream.Fill(segment);
        uint64_t id = t * kPerThread + i;
        double now = static_cast<double>(id + 1) * kSegmentLength /
                     config.ingest_points_per_sec;
        auto report = node.Ingest(id, now, segment);
        ASSERT_TRUE(report.ok());
        if (report.value().egressed) ++egressed_reports;
      }
    });
  }
  for (auto& worker : workers) worker.join();

  constexpr uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(node.egressed_segments() + node.queued_segments() +
                node.spilled_segments(),
            kTotal);
  // A report claims only its own segment, so claimed egresses can never
  // exceed actual ones (a segment may also be egressed by a LATER call's
  // drain, after its own report said false).
  EXPECT_LE(egressed_reports.load(), node.egressed_segments());
  EXPECT_GT(node.egressed_segments(), 0u);
}

TEST(OnlineNodeTest, EgressedReportTrueOnlyWhenThisSegmentLeft) {
  // Sequential sanity for the per-segment semantics: with a generous
  // link every ingest reports egressed; with a dead link none do.
  OnlineNodeConfig generous;
  generous.ingest_points_per_sec = 100000.0;
  generous.bandwidth_bytes_per_sec = 8e6;
  OnlineNode fast(generous, TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeSegments(10, 61);
  for (size_t i = 0; i < segments.size(); ++i) {
    double now = static_cast<double>(i + 1) * kSegmentLength / 100000.0;
    auto report = fast.Ingest(i, now, segments[i]);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report.value().egressed) << "segment " << i;
  }

  OnlineNodeConfig dead = generous;
  dead.bandwidth_bytes_per_sec = 0.0;
  dead.derive_target_ratio = false;
  dead.selector.target_ratio = 0.2;
  OnlineNode stuck(dead, TargetSpec::AggAccuracy(query::AggKind::kSum));
  for (size_t i = 0; i < segments.size(); ++i) {
    auto report = stuck.Ingest(i, i * 0.01, segments[i]);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report.value().egressed) << "segment " << i;
  }
}

}  // namespace
}  // namespace adaedge::core
