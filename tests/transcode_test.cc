// Cross-codec transcoding tests (the paper's SIV-E future-work feature):
// format compatibility between codecs and the shared internal decoders,
// equivalence of direct transcodes with decompress-and-recompress, and
// budget adherence.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/compress/internal_formats.h"
#include "adaedge/compress/registry.h"
#include "adaedge/compress/transcode.h"
#include "adaedge/util/stats.h"
#include "testing_util.h"

namespace adaedge::compress {
namespace {

using ::adaedge::testing::QuantizeDecimals;
using ::adaedge::testing::RandomWalk;
using ::adaedge::testing::SineSignal;

std::vector<double> Signal() {
  auto a = SineSignal(2048, 96, 4.0);
  auto b = RandomWalk(2048, 31, 0.15);
  for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
  return QuantizeDecimals(a, 4);
}

std::vector<uint8_t> CompressWith(const char* name, double ratio,
                                  std::span<const double> values) {
  auto arm = *FindArm(ExtendedLossyArms(4, ratio), name);
  auto payload = arm.codec->Compress(values, arm.params);
  EXPECT_TRUE(payload.ok()) << name;
  return std::move(payload).value();
}

// ---------------------------------------------------------------------------
// The shared internal decoders must agree byte-for-byte with the codecs'
// own formats (Encode(Decode(payload)) == payload pins the duplication).

TEST(InternalFormatsTest, PaaRoundtripsByteExact) {
  auto payload = CompressWith("paa", 0.3, Signal());
  auto decoded = internal::DecodePaa(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(internal::EncodePaa(decoded.value()), payload);
}

TEST(InternalFormatsTest, PlaRoundtripsByteExact) {
  auto payload = CompressWith("pla", 0.3, Signal());
  auto decoded = internal::DecodePla(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(internal::EncodePla(decoded.value()), payload);
}

TEST(InternalFormatsTest, LttbRoundtripsByteExact) {
  auto payload = CompressWith("lttb", 0.3, Signal());
  auto decoded = internal::DecodeLttb(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(internal::EncodeLttb(decoded.value()), payload);
}

TEST(InternalFormatsTest, RrdRoundtripsByteExact) {
  auto payload = CompressWith("rrd", 0.3, Signal());
  auto decoded = internal::DecodeRrd(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(internal::EncodeRrd(decoded.value()), payload);
}

// ---------------------------------------------------------------------------
// Direct transcodes.

struct TranscodeCase {
  CodecId from;
  CodecId to;
  const char* from_name;
  double source_ratio;
  double target_ratio;
};

class DirectTranscodeTest : public ::testing::TestWithParam<TranscodeCase> {
};

TEST_P(DirectTranscodeTest, MeetsBudgetAndStaysDecodable) {
  const TranscodeCase& c = GetParam();
  std::vector<double> input = Signal();
  auto source = CompressWith(c.from_name, c.source_ratio, input);
  ASSERT_TRUE(SupportsDirectTranscode(c.from, c.to));
  auto transcoded = TranscodeDirect(c.from, source, c.to, c.target_ratio);
  ASSERT_TRUE(transcoded.ok()) << transcoded.status().ToString();
  EXPECT_LE(CompressionRatio(transcoded.value().size(), input.size()),
            c.target_ratio * 1.05 + 0.005);
  auto back = GetCodec(c.to)->Decompress(transcoded.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().size(), input.size());
}

TEST_P(DirectTranscodeTest, QualityMatchesDecompressRecompress) {
  const TranscodeCase& c = GetParam();
  std::vector<double> input = Signal();
  auto source = CompressWith(c.from_name, c.source_ratio, input);

  auto direct = TranscodeDirect(c.from, source, c.to, c.target_ratio);
  ASSERT_TRUE(direct.ok());
  auto direct_back = GetCodec(c.to)->Decompress(direct.value());
  ASSERT_TRUE(direct_back.ok());

  // Reference: decompress the source, recompress with the destination.
  auto samples = GetCodec(c.from)->Decompress(source);
  ASSERT_TRUE(samples.ok());
  CodecParams params;
  params.precision = 4;
  params.target_ratio = c.target_ratio;
  auto recompressed = GetCodec(c.to)->Compress(samples.value(), params);
  ASSERT_TRUE(recompressed.ok());
  auto reference_back = GetCodec(c.to)->Decompress(recompressed.value());
  ASSERT_TRUE(reference_back.ok());

  double direct_err =
      util::RootMeanSquareError(input, direct_back.value());
  double reference_err =
      util::RootMeanSquareError(input, reference_back.value());
  // The direct path works from the source representation alone, so it
  // must land in the same quality regime as the full-reconstruction
  // reference.
  EXPECT_LE(direct_err, 1.5 * reference_err + 1e-6)
      << "direct=" << direct_err << " reference=" << reference_err;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, DirectTranscodeTest,
    ::testing::Values(
        TranscodeCase{CodecId::kPaa, CodecId::kPla, "paa", 0.4, 0.15},
        TranscodeCase{CodecId::kPaa, CodecId::kRrdSample, "paa", 0.4, 0.1},
        TranscodeCase{CodecId::kPla, CodecId::kPaa, "pla", 0.4, 0.15},
        TranscodeCase{CodecId::kLttb, CodecId::kPla, "lttb", 0.4, 0.15}),
    [](const ::testing::TestParamInfo<TranscodeCase>& info) {
      return std::string(CodecIdName(info.param.from)) + "_to_" +
             std::string(CodecIdName(info.param.to));
    });

TEST(TranscodeTest, PlaToPaaIsExactOnReconstruction) {
  // Integrating the lines is exact: the transcoded PAA must equal PAA
  // applied to the PLA reconstruction (same window).
  std::vector<double> input = Signal();
  auto source = CompressWith("pla", 0.4, input);
  auto transcoded =
      TranscodeDirect(CodecId::kPla, source, CodecId::kPaa, 0.2);
  ASSERT_TRUE(transcoded.ok());
  auto samples = GetCodec(CodecId::kPla)->Decompress(source);
  ASSERT_TRUE(samples.ok());
  auto direct_means = internal::DecodePaa(transcoded.value());
  ASSERT_TRUE(direct_means.ok());
  // Recompute the window means from the reconstruction.
  const auto& d = direct_means.value();
  for (size_t i = 0; i < d.means.size(); ++i) {
    size_t start = i * d.w;
    size_t end = std::min<size_t>(start + d.w, samples.value().size());
    double sum = 0.0;
    for (size_t t = start; t < end; ++t) sum += samples.value()[t];
    EXPECT_NEAR(d.means[i], sum / static_cast<double>(end - start), 1e-9)
        << "window " << i;
  }
}

TEST(TranscodeTest, FallbackPathWorksForUnsupportedPairs) {
  std::vector<double> input = Signal();
  auto source = CompressWith("fft", 0.4, input);
  ASSERT_FALSE(SupportsDirectTranscode(CodecId::kFft, CodecId::kPaa));
  EXPECT_FALSE(
      TranscodeDirect(CodecId::kFft, source, CodecId::kPaa, 0.1).ok());
  auto fallback =
      TranscodeOrRecompress(CodecId::kFft, source, CodecId::kPaa, 0.1);
  ASSERT_TRUE(fallback.ok());
  EXPECT_LE(CompressionRatio(fallback.value().size(), input.size()),
            0.105);
  EXPECT_TRUE(GetCodec(CodecId::kPaa)->Decompress(fallback.value()).ok());
}

}  // namespace
}  // namespace adaedge::compress
