// Property suites for the recoding ("virtual decompression") machinery:
// chained recodes stay decodable and within budget, error grows
// monotonically along a chain, and recode-vs-direct quality equivalence
// holds across codecs and chains (SIV-E).

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/compress/registry.h"
#include "adaedge/util/stats.h"
#include "testing_util.h"

namespace adaedge::compress {
namespace {

using ::adaedge::testing::QuantizeDecimals;
using ::adaedge::testing::RandomWalk;
using ::adaedge::testing::SineSignal;

constexpr size_t kN = 2048;

std::vector<double> Signal(const std::string& family) {
  if (family == "sine") return QuantizeDecimals(SineSignal(kN, 128), 4);
  if (family == "walk") return QuantizeDecimals(RandomWalk(kN, 5), 4);
  // mixed: sine + walk
  auto a = SineSignal(kN, 64, 4.0);
  auto b = RandomWalk(kN, 9, 0.2);
  for (size_t i = 0; i < kN; ++i) a[i] += b[i];
  return QuantizeDecimals(a, 4);
}

class RecodeChainTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

// A halving chain 0.8 -> 0.4 -> 0.2 -> 0.1 must keep every intermediate
// payload decodable, within its budget, and no less accurate than the
// next (tighter) step.
TEST_P(RecodeChainTest, HalvingChainInvariants) {
  auto [codec_name, family] = GetParam();
  auto arm = *FindArm(ExtendedLossyArms(4, 0.8), codec_name);
  std::vector<double> input = Signal(family);

  auto payload = arm.codec->Compress(input, arm.params);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  double prev_err = -1.0;
  double ratio = 0.8;
  std::vector<uint8_t> current = std::move(payload).value();
  while (ratio > 0.1) {
    ratio *= 0.5;
    if (!arm.codec->SupportsRatio(ratio, input.size())) break;
    auto recoded = arm.codec->Recode(current, ratio);
    if (!recoded.ok()) {
      // Hitting a codec floor mid-chain is legal; it must be signalled
      // as ResourceExhausted, never as corruption.
      EXPECT_EQ(recoded.status().code(),
                util::StatusCode::kResourceExhausted)
          << codec_name;
      break;
    }
    current = std::move(recoded).value();
    EXPECT_LE(CompressionRatio(current.size(), input.size()),
              ratio * 1.02 + 0.003)
        << codec_name << " at ratio " << ratio;
    auto back = arm.codec->Decompress(current);
    ASSERT_TRUE(back.ok()) << codec_name;
    ASSERT_EQ(back.value().size(), input.size());
    double err = util::RootMeanSquareError(input, back.value());
    if (prev_err >= 0.0) {
      // Tighter encodings cannot be more faithful (tiny tolerance for
      // sampling codecs whose RMSE is stochastic).
      EXPECT_GE(err, prev_err * 0.7) << codec_name << " ratio " << ratio;
    }
    prev_err = err;
  }
}

// Recoding down a chain must land in the same quality regime as a single
// direct compression at the final ratio.
TEST_P(RecodeChainTest, ChainCloseToDirect) {
  auto [codec_name, family] = GetParam();
  auto arm = *FindArm(ExtendedLossyArms(4, 0.6), codec_name);
  std::vector<double> input = Signal(family);

  auto first = arm.codec->Compress(input, arm.params);
  ASSERT_TRUE(first.ok());
  // Codecs may overachieve the 0.6 target (e.g. BUFF capped at its
  // lossless width); chain targets are relative to what was achieved.
  double achieved =
      CompressionRatio(first.value().size(), input.size());
  double mid_ratio = achieved * 0.6;
  double last_ratio = achieved * 0.3;
  if (!arm.codec->SupportsRatio(last_ratio, input.size())) GTEST_SKIP();

  auto mid = arm.codec->Recode(first.value(), mid_ratio);
  ASSERT_TRUE(mid.ok()) << mid.status().ToString();
  auto last = arm.codec->Recode(mid.value(), last_ratio);
  ASSERT_TRUE(last.ok()) << last.status().ToString();
  auto chain_back = arm.codec->Decompress(last.value());
  ASSERT_TRUE(chain_back.ok());

  CodecParams direct_params = arm.params;
  direct_params.target_ratio = last_ratio;
  auto direct = arm.codec->Compress(input, direct_params);
  ASSERT_TRUE(direct.ok());
  auto direct_back = arm.codec->Decompress(direct.value());
  ASSERT_TRUE(direct_back.ok());

  double chain_err = util::RootMeanSquareError(input, chain_back.value());
  double direct_err = util::RootMeanSquareError(input, direct_back.value());
  EXPECT_LE(chain_err, 3.0 * direct_err + 1e-9) << codec_name;
}

std::vector<std::tuple<std::string, std::string>> ChainCases() {
  std::vector<std::tuple<std::string, std::string>> cases;
  for (const char* codec : {"bufflossy", "paa", "pla", "fft", "rrd",
                            "lttb"}) {
    for (const char* family : {"sine", "walk", "mixed"}) {
      cases.emplace_back(codec, family);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Chains, RecodeChainTest, ::testing::ValuesIn(ChainCases()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// Corrupted payloads must be rejected, not crash, for every lossy codec.
class RecodeCorruptionTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RecodeCorruptionTest, TruncatedPayloadRejected) {
  auto arm = *FindArm(ExtendedLossyArms(4, 0.5), GetParam());
  std::vector<double> input = Signal("sine");
  auto payload = arm.codec->Compress(input, arm.params);
  ASSERT_TRUE(payload.ok());
  std::vector<uint8_t> truncated(
      payload.value().begin(),
      payload.value().begin() + payload.value().size() / 3);
  auto decoded = arm.codec->Decompress(truncated);
  EXPECT_FALSE(decoded.ok()) << GetParam();
  // Recode of a truncated payload must not succeed silently either.
  auto recoded = arm.codec->Recode(truncated, 0.1);
  if (recoded.ok()) {
    // If header survived truncation the recode may "work"; it must then
    // at least produce a payload that decodes to the right length.
    auto back = arm.codec->Decompress(recoded.value());
    if (back.ok()) {
      EXPECT_EQ(back.value().size(), input.size());
    }
  }
}

TEST_P(RecodeCorruptionTest, EmptyPayloadRejected) {
  auto arm = *FindArm(ExtendedLossyArms(4, 0.5), GetParam());
  std::vector<uint8_t> empty;
  EXPECT_FALSE(arm.codec->Decompress(empty).ok());
  EXPECT_FALSE(arm.codec->Recode(empty, 0.1).ok());
}

INSTANTIATE_TEST_SUITE_P(AllLossy, RecodeCorruptionTest,
                         ::testing::Values("bufflossy", "paa", "pla", "fft",
                                           "rrd", "lttb"));

// SupportsRatio must be consistent with Compress on representative data:
// if a codec claims support, compressing CBF-scale data at that ratio
// must succeed and meet the budget.
class SupportsRatioConsistencyTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(SupportsRatioConsistencyTest, ClaimsMatchBehaviour) {
  auto arm = *FindArm(ExtendedLossyArms(4), GetParam());
  std::vector<double> input = Signal("mixed");
  for (double ratio = 1.0; ratio > 0.02; ratio *= 0.8) {
    CodecParams params = arm.params;
    params.target_ratio = ratio;
    bool claims = arm.codec->SupportsRatio(ratio, input.size());
    auto payload = arm.codec->Compress(input, params);
    if (claims) {
      ASSERT_TRUE(payload.ok())
          << GetParam() << " claimed ratio " << ratio << " but failed: "
          << payload.status().ToString();
      EXPECT_LE(CompressionRatio(payload.value().size(), input.size()),
                ratio * 1.02 + 0.003)
          << GetParam() << " at " << ratio;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLossy, SupportsRatioConsistencyTest,
                         ::testing::Values("bufflossy", "paa", "pla", "fft",
                                           "rrd", "lttb"));

}  // namespace
}  // namespace adaedge::compress
