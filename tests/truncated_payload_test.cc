// Truncation totality: every codec must survive every byte-length prefix
// of each of its own valid payloads. Truncation is the corruption mode
// storage actually produces (torn writes, short reads, partial
// transfers), so unlike the random mutations in tools/fuzz this sweep is
// exhaustive: all prefixes of real payloads, all codecs, including the
// transform and lossy ones.
//
// The contract (DESIGN.md "Decoder robustness contract") is totality,
// not detection: a truncated prefix may still decode successfully (a
// prefix of an RLE stream is often itself a valid stream) — it must
// simply return a Status or bounded values, never crash, hang, or
// allocate unboundedly.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/compress/codec.h"
#include "adaedge/compress/registry.h"
#include "adaedge/query/aggregate.h"
#include "adaedge/util/rng.h"

namespace adaedge::compress {
namespace {

double Round4(double v) { return std::round(v * 1e4) / 1e4; }

// Same seeded shapes as golden_payload_test.cc (shorter n keeps the
// all-prefixes sweep fast).
std::vector<double> MakeSmooth(size_t n) {
  util::Rng rng(0x5eed0001);
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = Round4(10.0 * std::sin(0.01 * static_cast<double>(i)) +
                    0.01 * rng.NextGaussian());
  }
  return out;
}

std::vector<double> MakeRepeats(size_t n) {
  util::Rng rng(0x5eed0003);
  std::vector<double> levels(16);
  for (auto& l : levels) l = Round4(rng.NextUniform(-50.0, 50.0));
  std::vector<double> out;
  out.reserve(n);
  while (out.size() < n) {
    double level = levels[rng.NextBelow(levels.size())];
    size_t run = 1 + rng.NextBelow(20);
    for (size_t i = 0; i < run && out.size() < n; ++i) out.push_back(level);
  }
  return out;
}

struct CodecCase {
  const char* name;
  CodecId id;
};

constexpr CodecCase kCodecs[] = {
    {"raw", CodecId::kRaw},
    {"deflate", CodecId::kDeflate},
    {"fastlz", CodecId::kFastLz},
    {"dictionary", CodecId::kDictionary},
    {"rle", CodecId::kRle},
    {"gorilla", CodecId::kGorilla},
    {"chimp", CodecId::kChimp},
    {"sprintz", CodecId::kSprintz},
    {"buff", CodecId::kBuff},
    {"elf", CodecId::kElf},
    {"bufflossy", CodecId::kBuffLossy},
    {"paa", CodecId::kPaa},
    {"pla", CodecId::kPla},
    {"fft", CodecId::kFft},
    {"rrdsample", CodecId::kRrdSample},
    {"lttb", CodecId::kLttb},
    {"kernel", CodecId::kKernel},
};

// Decoding a prefix may legitimately succeed; when it does the result
// must stay within the bounds declared by the (intact) header.
void CheckPrefix(const Codec& codec, const std::vector<uint8_t>& prefix,
                 size_t original_count) {
  auto decoded = codec.Decompress(prefix);
  if (decoded.ok()) {
    EXPECT_LE(decoded.value().size(), original_count);
  }
  if (codec.SupportsRandomAccess()) {
    (void)codec.ValueAt(prefix, 0);
    (void)codec.ValueAt(prefix, original_count - 1);
    (void)codec.ValueAt(prefix, original_count);
  }
  if (codec.SupportsDirectAggregate(query::AggKind::kSum)) {
    (void)codec.AggregateDirect(query::AggKind::kSum, prefix);
  }
  if (codec.SupportsDirectAggregate(query::AggKind::kMin)) {
    (void)codec.AggregateDirect(query::AggKind::kMin, prefix);
  }
}

class TruncatedPayloadTest : public ::testing::TestWithParam<CodecCase> {};

TEST_P(TruncatedPayloadTest, EveryPrefixIsHandled) {
  const CodecCase& tc = GetParam();
  auto codec = GetCodec(tc.id);
  ASSERT_NE(codec, nullptr);

  CodecParams params;
  params.precision = 4;
  params.target_ratio = 0.3;

  // Dictionary refuses high-cardinality input, so offer both shapes and
  // sweep whichever payloads the codec actually produces.
  const std::vector<std::vector<double>> inputs = {MakeSmooth(257),
                                                   MakeRepeats(257)};
  size_t swept = 0;
  for (const auto& values : inputs) {
    auto payload = codec->Compress(values, params);
    if (!payload.ok()) continue;  // codec declined this shape; fine
    const std::vector<uint8_t>& bytes = payload.value();

    // Sanity: the intact payload decodes to the declared length.
    auto full = codec->Decompress(bytes);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    EXPECT_LE(full.value().size(), values.size());

    for (size_t len = 0; len < bytes.size(); ++len) {
      SCOPED_TRACE(std::string(tc.name) + " truncated to " +
                   std::to_string(len) + "/" + std::to_string(bytes.size()) +
                   " bytes");
      CheckPrefix(*codec,
                  std::vector<uint8_t>(bytes.begin(),
                                       bytes.begin() + static_cast<long>(len)),
                  values.size());
    }
    ++swept;
  }
  EXPECT_GT(swept, 0u) << tc.name << " compressed neither test shape";
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, TruncatedPayloadTest,
                         ::testing::ValuesIn(kCodecs),
                         [](const ::testing::TestParamInfo<CodecCase>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace adaedge::compress
