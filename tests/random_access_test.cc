// Random access on compressed payloads: ValueAt must equal
// Decompress(payload)[index] for every codec with a direct path, at
// arbitrary indices, and must be rejected out of range.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/compress/registry.h"
#include "adaedge/util/rng.h"
#include "testing_util.h"

namespace adaedge::compress {
namespace {

using ::adaedge::testing::QuantizeDecimals;
using ::adaedge::testing::RandomWalk;
using ::adaedge::testing::SineSignal;
using ::adaedge::testing::SteppedSignal;

struct AccessCase {
  std::string codec;
  std::string family;
};

std::vector<double> Signal(const std::string& family, size_t n) {
  if (family == "sine") return QuantizeDecimals(SineSignal(n, 70), 4);
  if (family == "walk") return QuantizeDecimals(RandomWalk(n, 13), 4);
  return SteppedSignal(n, 17);
}

class RandomAccessTest : public ::testing::TestWithParam<AccessCase> {};

TEST_P(RandomAccessTest, MatchesDecompressedValues) {
  const AccessCase& c = GetParam();
  auto lossy = ExtendedLossyArms(4, 0.35);
  auto lossless = ExtendedLosslessArms(4);
  auto arm = FindArm(lossy, c.codec);
  if (!arm.has_value()) arm = FindArm(lossless, c.codec);
  if (!arm.has_value()) {
    // "raw" is not an arm; resolve via the registry.
    arm = CodecArm{"raw", GetCodec(CodecId::kRaw), CodecParams{}};
  }
  ASSERT_TRUE(arm->codec->SupportsRandomAccess()) << c.codec;

  std::vector<double> input = Signal(c.family, 1777);
  auto payload = arm->codec->Compress(input, arm->params);
  if (!payload.ok()) GTEST_SKIP() << payload.status().ToString();
  auto reference = arm->codec->Decompress(payload.value());
  ASSERT_TRUE(reference.ok());

  util::Rng rng(55);
  std::vector<uint64_t> indices = {0, 1, input.size() - 1,
                                   input.size() / 2};
  for (int i = 0; i < 60; ++i) indices.push_back(rng.NextBelow(1777));
  for (uint64_t index : indices) {
    auto value = arm->codec->ValueAt(payload.value(), index);
    ASSERT_TRUE(value.ok())
        << c.codec << " index " << index << ": "
        << value.status().ToString();
    EXPECT_DOUBLE_EQ(value.value(), reference.value()[index])
        << c.codec << " index " << index;
  }
  // Out of range must be rejected, not misread.
  EXPECT_FALSE(arm->codec->ValueAt(payload.value(), 1777).ok());
  EXPECT_FALSE(arm->codec->ValueAt(payload.value(), ~uint64_t{0} / 2).ok());
}

std::vector<AccessCase> AllCases() {
  std::vector<AccessCase> cases;
  for (const char* codec : {"raw", "paa", "pla", "rrd", "lttb",
                            "bufflossy", "rle", "dictionary"}) {
    for (const char* family : {"sine", "walk", "stepped"}) {
      cases.push_back(AccessCase{codec, family});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, RandomAccessTest,
                         ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<AccessCase>& i) {
                           return i.param.codec + "_" + i.param.family;
                         });

TEST(RandomAccessTest, NoPathCodecsSaySo) {
  for (CodecId id : {CodecId::kGorilla, CodecId::kSprintz, CodecId::kFft,
                     CodecId::kDeflate, CodecId::kKernel}) {
    auto codec = GetCodec(id);
    EXPECT_FALSE(codec->SupportsRandomAccess()) << CodecIdName(id);
    std::vector<uint8_t> dummy = {0, 0, 0};
    EXPECT_EQ(codec->ValueAt(dummy, 0).status().code(),
              util::StatusCode::kUnimplemented)
        << CodecIdName(id);
  }
}

}  // namespace
}  // namespace adaedge::compress
