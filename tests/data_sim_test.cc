// Data generators and simulation substrate tests.

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/data/generators.h"
#include "adaedge/sim/constraints.h"
#include "adaedge/sim/sensor_client.h"
#include "adaedge/util/stats.h"

namespace adaedge {
namespace {

TEST(CbfGeneratorTest, ShapesMatchDefinition) {
  data::CbfGenerator gen(42, 128, 4);
  // Cylinder: plateau region markedly above the off-plateau noise.
  auto cyl = gen.Next(0);
  ASSERT_EQ(cyl.values.size(), 128u);
  EXPECT_EQ(cyl.label, 0);
  double head = 0.0;  // t < 16 is always off-plateau
  for (int t = 0; t < 10; ++t) head += cyl.values[t];
  double mid = 0.0;  // t in [32, 48) is always on-plateau (b >= a+32 > 48...)
  for (int t = 33; t < 43; ++t) mid += cyl.values[t];
  EXPECT_GT(mid / 10.0, head / 10.0 + 2.0);
}

TEST(CbfGeneratorTest, BellRampsUpFunnelRampsDown) {
  data::CbfGenerator gen(43, 128, 4);
  // Average many instances to suppress noise.
  double bell_early = 0, bell_late = 0, funnel_early = 0, funnel_late = 0;
  for (int i = 0; i < 50; ++i) {
    auto bell = gen.Next(1);
    auto funnel = gen.Next(2);
    for (int t = 33; t < 40; ++t) {
      bell_early += bell.values[t];
      funnel_early += funnel.values[t];
    }
    // Late plateau region: b >= a + 32*scale >= 48; sample just before 48.
    for (int t = 41; t < 48; ++t) {
      bell_late += bell.values[t];
      funnel_late += funnel.values[t];
    }
  }
  EXPECT_GT(bell_late, bell_early);      // bell ascends
  EXPECT_LT(funnel_late, funnel_early);  // funnel descends
}

TEST(CbfGeneratorTest, DeterministicForSeed) {
  data::CbfGenerator a(7), b(7);
  auto sa = a.Next();
  auto sb = b.Next();
  EXPECT_EQ(sa.label, sb.label);
  EXPECT_EQ(sa.values, sb.values);
}

TEST(CbfGeneratorTest, ValuesQuantizedToPrecision) {
  data::CbfGenerator gen(11, 128, 2);
  auto s = gen.Next();
  for (double v : s.values) {
    EXPECT_NEAR(v * 100.0, std::round(v * 100.0), 1e-9);
  }
}

TEST(DatasetSuitesTest, CbfDatasetBalancedLabels) {
  auto data = data::MakeCbfDataset(300, 128, 3);
  ASSERT_EQ(data.size(), 300u);
  ASSERT_EQ(data.num_classes(), 3);
  std::vector<int> counts(3, 0);
  for (int l : data.labels) ++counts[l];
  for (int c : counts) EXPECT_EQ(c, 100);
}

TEST(DatasetSuitesTest, UcrAndUciShapes) {
  auto ucr = data::MakeUcrLikeDataset(100, 64, 5, 9);
  EXPECT_EQ(ucr.features.cols(), 64u);
  EXPECT_EQ(ucr.num_classes(), 5);
  auto uci = data::MakeUciLikeDataset(90, 32, 3, 9);
  EXPECT_EQ(uci.features.cols(), 32u);
  EXPECT_EQ(uci.num_classes(), 3);
}

TEST(StreamTest, CbfStreamContinuous) {
  data::CbfStream stream(21);
  std::vector<double> buffer(1000);
  stream.Fill(buffer);
  util::RunningStats stats;
  for (double v : buffer) stats.Add(v);
  // CBF values live in roughly [-4, 12].
  EXPECT_GT(stats.max(), 2.0);
  EXPECT_LT(stats.min(), 1.0);
}

TEST(StreamTest, ShiftStreamChangesEntropyRegime) {
  data::ShiftStream stream(23, /*shift_point=*/5000);
  std::vector<double> first(5000), second(5000);
  stream.Fill(first);
  stream.Fill(second);
  std::unordered_set<double> distinct_first(first.begin(), first.end());
  std::unordered_set<double> distinct_second(second.begin(), second.end());
  // CBF half: nearly all values distinct; low-entropy half: a handful.
  EXPECT_GT(distinct_first.size(), 1000u);
  EXPECT_LT(distinct_second.size(), 16u);
}

TEST(NetworkTest, TargetRatioFormula) {
  // R = B / (64 * I) in bits = B_bytes / (8 * I).
  EXPECT_DOUBLE_EQ(sim::TargetRatio(8e6, 1e6), 1.0);
  EXPECT_DOUBLE_EQ(sim::TargetRatio(4e6, 1e6), 0.5);
  EXPECT_DOUBLE_EQ(sim::TargetRatio(0.0, 1e6), 0.0);
}

TEST(NetworkTest, TargetRatioDegenerateInputs) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  // No usable bandwidth (negative, NaN, zero): ratio 0 — nothing fits.
  EXPECT_DOUBLE_EQ(sim::TargetRatio(-5.0, 1e6), 0.0);
  EXPECT_DOUBLE_EQ(sim::TargetRatio(nan, 1e6), 0.0);
  EXPECT_DOUBLE_EQ(sim::TargetRatio(0.0, 0.0), 0.0);  // bandwidth first
  // No ingest pressure (zero, negative, NaN rate): lossless suffices.
  EXPECT_DOUBLE_EQ(sim::TargetRatio(8e6, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sim::TargetRatio(8e6, -3.0), 1.0);
  EXPECT_DOUBLE_EQ(sim::TargetRatio(8e6, nan), 1.0);
  // Unlimited link: infinite ratio (any compression acceptable).
  EXPECT_TRUE(std::isinf(sim::TargetRatio(inf, 1e6)));
}

TEST(NetworkTest, CapacityAccounting) {
  sim::Network net(1000.0);  // 1000 B/s
  net.Send(500, 1.0);
  EXPECT_TRUE(net.WithinCapacity(1.0));
  net.Send(600, 1.0);
  EXPECT_FALSE(net.WithinCapacity(1.0));
  EXPECT_TRUE(net.WithinCapacity(2.0));
  EXPECT_EQ(net.bytes_sent(), 1100u);
}

TEST(NetworkTest, PresetsOrdered) {
  EXPECT_LT(sim::BandwidthBytesPerSec(sim::NetworkType::k2G),
            sim::BandwidthBytesPerSec(sim::NetworkType::k3G));
  EXPECT_LT(sim::BandwidthBytesPerSec(sim::NetworkType::k3G),
            sim::BandwidthBytesPerSec(sim::NetworkType::k4G));
  EXPECT_LT(sim::BandwidthBytesPerSec(sim::NetworkType::k4G),
            sim::BandwidthBytesPerSec(sim::NetworkType::kWifi));
  EXPECT_DOUBLE_EQ(sim::BandwidthBytesPerSec(sim::NetworkType::kNone), 0.0);
}

TEST(StorageBudgetTest, ReserveReleaseResize) {
  sim::StorageBudget budget(1000, 0.8);
  EXPECT_TRUE(budget.TryReserve(700));
  EXPECT_FALSE(budget.NeedsRecoding());
  EXPECT_TRUE(budget.TryReserve(150));
  EXPECT_TRUE(budget.NeedsRecoding());  // 850/1000 >= 0.8
  EXPECT_FALSE(budget.TryReserve(200));  // would exceed capacity
  EXPECT_EQ(budget.used(), 850u);
  EXPECT_TRUE(budget.Resize(150, 50));  // recode shrinks a segment
  EXPECT_EQ(budget.used(), 750u);
  EXPECT_FALSE(budget.NeedsRecoding());
  budget.Release(750);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(StorageBudgetTest, HugeReservationDoesNotWrapPastCapacity) {
  // Regression: the old check was `used_ + bytes > capacity_`, which
  // wraps modulo 2^64 for huge `bytes` — SIZE_MAX "fit" into a 1000-byte
  // budget and used_ wrapped to nonsense. The subtraction form cannot.
  sim::StorageBudget budget(1000, 0.8);
  EXPECT_TRUE(budget.TryReserve(100));
  EXPECT_FALSE(budget.TryReserve(SIZE_MAX));
  EXPECT_FALSE(budget.TryReserve(SIZE_MAX - 99));  // 100 + this == 2^64
  EXPECT_EQ(budget.used(), 100u);
  EXPECT_TRUE(budget.TryReserve(900));  // exact fit still granted
  EXPECT_FALSE(budget.TryReserve(1));
  EXPECT_EQ(budget.used(), 1000u);
}

TEST(StorageBudgetTest, HugeResizeDoesNotWrapPastCapacity) {
  sim::StorageBudget budget(1000, 0.8);
  ASSERT_TRUE(budget.TryReserve(500));
  // Regression: `used_ - old_bytes + new_bytes` wrapped twice over — a
  // recode "growing" a 100-byte segment to SIZE_MAX passed the check.
  EXPECT_FALSE(budget.Resize(100, SIZE_MAX));
  EXPECT_EQ(budget.used(), 500u);  // rejected resize must not mutate
  // old_bytes > used_ (double-release bug upstream) clamps instead of
  // wrapping used_ to ~2^64.
  EXPECT_TRUE(budget.Resize(600, 200));
  EXPECT_EQ(budget.used(), 200u);
  EXPECT_TRUE(budget.Resize(200, 1000));  // exact fit at the boundary
  EXPECT_EQ(budget.used(), 1000u);
  EXPECT_FALSE(budget.Resize(0, 1));
}

TEST(StorageBudgetTest, NearSizeMaxCapacityStaysConsistent) {
  sim::StorageBudget budget(SIZE_MAX, 1.0);
  EXPECT_TRUE(budget.TryReserve(SIZE_MAX - 1));
  EXPECT_FALSE(budget.TryReserve(2));  // 1 byte of headroom left
  EXPECT_TRUE(budget.TryReserve(1));
  EXPECT_EQ(budget.used(), SIZE_MAX);
  EXPECT_FALSE(budget.TryReserve(1));
  EXPECT_TRUE(budget.Resize(SIZE_MAX, 0));
  EXPECT_EQ(budget.used(), 0u);
}

TEST(SensorClientTest, CreateRejectsDegenerateRatesAndInputs) {
  auto make_stream = [] { return std::make_unique<data::CbfStream>(7); };
  EXPECT_EQ(sim::SensorClient::Create(nullptr, 100.0, 64).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(
      sim::SensorClient::Create(make_stream(), 100.0, 0).status().code(),
      util::StatusCode::kInvalidArgument);
  for (double rate : {0.0, -5.0, std::nan(""),
                      std::numeric_limits<double>::infinity()}) {
    auto client = sim::SensorClient::Create(make_stream(), rate, 64);
    EXPECT_EQ(client.status().code(), util::StatusCode::kInvalidArgument)
        << "rate " << rate << " accepted";
  }
  auto ok = sim::SensorClient::Create(make_stream(), 100.0, 64);
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok.value()->now_seconds(), 0.0);
}

TEST(SensorClientTest, UncheckedConstructorKeepsClockFinite) {
  // Regression: points_per_sec = 0 made now_seconds() infinite (and NaN
  // rates made it NaN), which poisoned every downstream `now` timestamp.
  for (double rate : {0.0, -1.0, std::nan("")}) {
    auto stream = std::make_unique<data::CbfStream>(9);
    sim::SensorClient client(std::move(stream), rate, 10);
    client.NextSegment();
    EXPECT_TRUE(std::isfinite(client.now_seconds())) << "rate " << rate;
    EXPECT_GT(client.now_seconds(), 0.0);
  }
}

TEST(SensorClientTest, VirtualClockAdvances) {
  auto stream = std::make_unique<data::CbfStream>(31);
  sim::SensorClient client(std::move(stream), 200000.0, 1000);
  EXPECT_DOUBLE_EQ(client.now_seconds(), 0.0);
  auto segment = client.NextSegment();
  EXPECT_EQ(segment.size(), 1000u);
  EXPECT_DOUBLE_EQ(client.now_seconds(), 0.005);  // 1000 / 200k
  for (int i = 0; i < 199; ++i) client.NextSegment();
  EXPECT_NEAR(client.now_seconds(), 1.0, 1e-9);
}

}  // namespace
}  // namespace adaedge
