// Aggregation operators and accuracy metrics.

#include <vector>

#include <gtest/gtest.h>

#include "adaedge/query/aggregate.h"

namespace adaedge::query {
namespace {

TEST(AggregateTest, BasicOperators) {
  std::vector<double> v = {1.0, -2.0, 3.5, 0.5};
  EXPECT_DOUBLE_EQ(Aggregate(AggKind::kSum, v), 3.0);
  EXPECT_DOUBLE_EQ(Aggregate(AggKind::kAvg, v), 0.75);
  EXPECT_DOUBLE_EQ(Aggregate(AggKind::kMin, v), -2.0);
  EXPECT_DOUBLE_EQ(Aggregate(AggKind::kMax, v), 3.5);
}

TEST(AggregateTest, EmptyInput) {
  std::vector<double> v;
  EXPECT_DOUBLE_EQ(Aggregate(AggKind::kSum, v), 0.0);
  EXPECT_DOUBLE_EQ(Aggregate(AggKind::kMax, v), 0.0);
}

TEST(RelativeAggAccuracyTest, ExactMatchScoresOne) {
  EXPECT_DOUBLE_EQ(RelativeAggAccuracy(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(RelativeAggAccuracy(-5.0, -5.0), 1.0);
}

TEST(RelativeAggAccuracyTest, TenPercentErrorScoresPointNine) {
  EXPECT_NEAR(RelativeAggAccuracy(100.0, 110.0), 0.9, 1e-12);
  EXPECT_NEAR(RelativeAggAccuracy(100.0, 90.0), 0.9, 1e-12);
}

TEST(RelativeAggAccuracyTest, ClampsToZero) {
  // A 300% error must not produce a negative accuracy.
  EXPECT_DOUBLE_EQ(RelativeAggAccuracy(1.0, 4.0), 0.0);
}

TEST(RelativeAggAccuracyTest, ZeroTruthHandled) {
  EXPECT_DOUBLE_EQ(RelativeAggAccuracy(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(RelativeAggAccuracy(0.0, 5.0), 0.0);
}

TEST(RelativeAggAccuracyTest, SeriesOverload) {
  std::vector<double> original = {1.0, 2.0, 3.0, 4.0};  // sum 10
  std::vector<double> lossy = {2.5, 2.5, 2.5, 2.5};     // sum 10
  EXPECT_DOUBLE_EQ(
      RelativeAggAccuracy(AggKind::kSum, original, lossy), 1.0);
  // Max: 4 vs 2.5 -> acc = 1 - 1.5/4.
  EXPECT_NEAR(RelativeAggAccuracy(AggKind::kMax, original, lossy),
              1.0 - 1.5 / 4.0, 1e-12);
}

TEST(CompressionThroughputTest, BytesPerSecond) {
  EXPECT_DOUBLE_EQ(CompressionThroughput(1000, 2.0), 500.0);
  EXPECT_GT(CompressionThroughput(1000, 0.0), 1e10);  // no div-by-zero
}

TEST(AggKindNameTest, AllNamed) {
  EXPECT_EQ(AggKindName(AggKind::kSum), "sum");
  EXPECT_EQ(AggKindName(AggKind::kAvg), "avg");
  EXPECT_EQ(AggKindName(AggKind::kMin), "min");
  EXPECT_EQ(AggKindName(AggKind::kMax), "max");
}

}  // namespace
}  // namespace adaedge::query
