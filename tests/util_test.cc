// Unit tests for the util substrate: status, bit/byte IO, rng, stats,
// crc32, bounded queue.

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/util/bit_io.h"
#include "adaedge/util/bounded_queue.h"
#include "adaedge/util/byte_io.h"
#include "adaedge/util/crc32.h"
#include "adaedge/util/rng.h"
#include "adaedge/util/stats.h"
#include "adaedge/util/status.h"

namespace adaedge::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad magic");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.ToString(), "Corruption: bad magic");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> Doubler(int x) {
  ADAEDGE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Doubler(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 11);
  auto bad = Doubler(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOr) {
  Result<int> bad = Status::NotFound("x");
  EXPECT_EQ(bad.value_or(42), 42);
  Result<int> good = 7;
  EXPECT_EQ(good.value_or(42), 7);
}

TEST(BitIoTest, RoundtripsMixedWidths) {
  BitWriter w;
  w.WriteBits(0b101, 3);
  w.WriteBits(0xdeadbeefcafebabeULL, 64);
  w.WriteBit(true);
  w.WriteBits(7, 5);
  w.WriteUnary(13);
  auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(3).value(), 0b101u);
  EXPECT_EQ(r.ReadBits(64).value(), 0xdeadbeefcafebabeULL);
  EXPECT_TRUE(r.ReadBit().value());
  EXPECT_EQ(r.ReadBits(5).value(), 7u);
  EXPECT_EQ(r.ReadUnary().value(), 13u);
}

TEST(BitIoTest, ZeroBitWriteIsNoop) {
  BitWriter w;
  w.WriteBits(0xff, 0);
  EXPECT_EQ(w.bit_count(), 0u);
}

TEST(BitIoTest, ReadPastEndFails) {
  BitWriter w;
  w.WriteBits(3, 2);
  auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_TRUE(r.ReadBits(8).ok());  // padded to one byte
  EXPECT_FALSE(r.ReadBits(1).ok());
}

TEST(BitIoTest, MasksHighBits) {
  BitWriter w;
  w.WriteBits(0xffff, 4);  // only low 4 bits should land
  auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(4).value(), 0xfu);
  EXPECT_EQ(r.ReadBits(4).value(), 0u);
}

TEST(ByteIoTest, RoundtripsScalars) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutF32(3.5f);
  w.PutF64(-2.25);
  w.PutVarint(300);
  w.PutSignedVarint(-150);
  w.PutString("hello");
  auto bytes = w.Finish();
  ByteReader r(bytes);
  EXPECT_EQ(r.GetU8().value(), 0xab);
  EXPECT_EQ(r.GetU16().value(), 0x1234);
  EXPECT_EQ(r.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_FLOAT_EQ(r.GetF32().value(), 3.5f);
  EXPECT_DOUBLE_EQ(r.GetF64().value(), -2.25);
  EXPECT_EQ(r.GetVarint().value(), 300u);
  EXPECT_EQ(r.GetSignedVarint().value(), -150);
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIoTest, VarintBoundaries) {
  for (uint64_t v : {0ull, 127ull, 128ull, 16383ull, 16384ull,
                     0xffffffffffffffffull}) {
    ByteWriter w;
    w.PutVarint(v);
    auto bytes = w.Finish();
    ByteReader r(bytes);
    EXPECT_EQ(r.GetVarint().value(), v);
  }
  for (int64_t v : std::vector<int64_t>{0, -1, 1, -64, 64, INT64_MIN,
                                        INT64_MAX}) {
    ByteWriter w;
    w.PutSignedVarint(v);
    auto bytes = w.Finish();
    ByteReader r(bytes);
    EXPECT_EQ(r.GetSignedVarint().value(), v);
  }
}

TEST(ByteIoTest, TruncatedReadsFail) {
  ByteWriter w;
  w.PutU32(5);
  auto bytes = w.Finish();
  ByteReader r(bytes);
  EXPECT_TRUE(r.GetU16().ok());
  EXPECT_FALSE(r.GetU32().ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    uint64_t v = rng.NextBelow(17);
    EXPECT_LT(v, 17u);
    int k = rng.NextInt(-3, 3);
    EXPECT_GE(k, -3);
    EXPECT_LE(k, 3);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(123);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(StatsTest, WelfordMatchesDirect) {
  std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.variance(), 29.76, 1e-9);
}

TEST(StatsTest, MergeEqualsSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextGaussian();
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(StatsTest, ByteEntropyExtremes) {
  std::vector<uint8_t> constant(1000, 42);
  EXPECT_NEAR(ByteEntropy(constant), 0.0, 1e-12);
  std::vector<uint8_t> uniform(25600);
  for (size_t i = 0; i < uniform.size(); ++i) uniform[i] = uint8_t(i % 256);
  EXPECT_NEAR(ByteEntropy(uniform), 8.0, 1e-9);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 1.0);
}

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE).
  const char* s = "123456789";
  std::vector<uint8_t> data(s, s + 9);
  EXPECT_EQ(Crc32(data), 0xcbf43926u);
}

TEST(Crc32Test, DetectsFlips) {
  std::vector<uint8_t> data(100, 7);
  uint32_t base = Crc32(data);
  data[50] ^= 1;
  EXPECT_NE(Crc32(data), base);
}

// The slice-by-8 implementation must match a bitwise reference for every
// length 0..64 (covering the 8-byte main loop, the bytewise tail, and
// their boundary) plus a large buffer. Bitwise CRC-32 (IEEE, reflected,
// poly 0xEDB88320) is the oracle.
TEST(Crc32Test, SliceBy8MatchesBitwiseReference) {
  auto bitwise = [](const std::vector<uint8_t>& data) {
    uint32_t crc = 0xffffffffu;
    for (uint8_t byte : data) {
      crc ^= byte;
      for (int b = 0; b < 8; ++b) {
        crc = (crc >> 1) ^ (0xedb88320u & (~(crc & 1u) + 1u));
      }
    }
    return crc ^ 0xffffffffu;
  };
  Rng rng(0xc2c32u);
  for (size_t len = 0; len <= 64; ++len) {
    std::vector<uint8_t> data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
    EXPECT_EQ(Crc32(data), bitwise(data)) << "len " << len;
  }
  std::vector<uint8_t> big(10000);
  for (auto& b : big) b = static_cast<uint8_t>(rng.NextU64());
  EXPECT_EQ(Crc32(big), bitwise(big));
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.Pop().value(), i);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, ProducerConsumerAcrossThreads) {
  BoundedQueue<int> q(8);
  constexpr int kCount = 10000;
  long long sum = 0;
  std::thread consumer([&] {
    while (auto v = q.Pop()) sum += *v;
  });
  for (int i = 1; i <= kCount; ++i) q.Push(i);
  q.Close();
  consumer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount + 1) / 2);
}

}  // namespace
}  // namespace adaedge::util
