// Roundtrip and edge-case tests for every lossless codec, including
// parameterized sweeps over codec x signal family x length.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/compress/buff.h"
#include "adaedge/compress/chimp.h"
#include "adaedge/compress/codec.h"
#include "adaedge/compress/deflate.h"
#include "adaedge/compress/dictionary.h"
#include "adaedge/compress/elf.h"
#include "adaedge/compress/fastlz.h"
#include "adaedge/compress/gorilla.h"
#include "adaedge/compress/raw.h"
#include "adaedge/compress/registry.h"
#include "adaedge/compress/rle.h"
#include "adaedge/compress/sprintz.h"
#include "testing_util.h"

namespace adaedge::compress {
namespace {

using ::adaedge::testing::ConstantSignal;
using ::adaedge::testing::NoisySignal;
using ::adaedge::testing::QuantizeDecimals;
using ::adaedge::testing::RandomWalk;
using ::adaedge::testing::SineSignal;
using ::adaedge::testing::SteppedSignal;

// BUFF and Sprintz are lossless only at their decimal precision, so all
// shared fixtures are pre-quantized to 4 digits.
constexpr int kPrecision = 4;

std::vector<double> MakeSignal(const std::string& family, size_t n) {
  if (family == "sine") return QuantizeDecimals(SineSignal(n), kPrecision);
  if (family == "walk") return QuantizeDecimals(RandomWalk(n), kPrecision);
  if (family == "constant") return ConstantSignal(n);
  if (family == "stepped") return SteppedSignal(n);
  return QuantizeDecimals(NoisySignal(n), kPrecision);
}

struct RoundtripCase {
  std::string codec_name;
  std::string family;
  size_t length;
};

std::string CaseName(const ::testing::TestParamInfo<RoundtripCase>& info) {
  std::string name = info.param.codec_name + "_" + info.param.family + "_" +
                     std::to_string(info.param.length);
  for (char& c : name) {
    if (c == '-') c = '_';  // gtest parameter names must be alphanumeric
  }
  return name;
}

class LosslessRoundtripTest : public ::testing::TestWithParam<RoundtripCase> {
 protected:
  CodecArm GetArm() const {
    auto arms = ExtendedLosslessArms(kPrecision);
    auto arm = FindArm(arms, GetParam().codec_name);
    EXPECT_TRUE(arm.has_value()) << GetParam().codec_name;
    return *arm;
  }
};

TEST_P(LosslessRoundtripTest, RoundtripsExactly) {
  const RoundtripCase& c = GetParam();
  CodecArm arm = GetArm();
  std::vector<double> input = MakeSignal(c.family, c.length);
  auto compressed = arm.codec->Compress(input, arm.params);
  if (!compressed.ok()) {
    // Dictionary legitimately refuses high-cardinality inputs.
    ASSERT_EQ(c.codec_name, "dictionary");
    ASSERT_EQ(compressed.status().code(),
              util::StatusCode::kResourceExhausted);
    return;
  }
  auto decompressed = arm.codec->Decompress(compressed.value());
  ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();
  ASSERT_EQ(decompressed.value().size(), input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    ASSERT_DOUBLE_EQ(decompressed.value()[i], input[i])
        << c.codec_name << " index " << i;
  }
}

std::vector<RoundtripCase> AllRoundtripCases() {
  std::vector<RoundtripCase> cases;
  for (const char* codec :
       {"gzip", "snappy", "gorilla", "zlib-1", "zlib-9", "buff", "sprintz",
        "chimp", "elf", "rle", "dictionary"}) {
    for (const char* family :
         {"sine", "walk", "constant", "stepped", "noise"}) {
      for (size_t n : {0u, 1u, 2u, 7u, 64u, 1000u, 4096u}) {
        cases.push_back(RoundtripCase{codec, family, n});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, LosslessRoundtripTest,
                         ::testing::ValuesIn(AllRoundtripCases()), CaseName);

// ---------------------------------------------------------------------------
// Codec-specific behaviour.

TEST(DeflateTest, CompressesRepetitiveBytesWell) {
  std::vector<uint8_t> input(10000, 0);
  for (size_t i = 0; i < input.size(); ++i) input[i] = uint8_t(i % 17);
  auto out = Deflate::CompressBytes(input, 6);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out.value().size(), input.size() / 5);
  auto back = Deflate::DecompressBytes(out.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), input);
}

TEST(DeflateTest, HigherLevelNeverLargerOnRepetitiveData) {
  std::vector<double> input = MakeSignal("sine", 4096);
  Deflate codec;
  CodecParams p1{.level = 1};
  CodecParams p9{.level = 9};
  auto out1 = codec.Compress(input, p1);
  auto out9 = codec.Compress(input, p9);
  ASSERT_TRUE(out1.ok());
  ASSERT_TRUE(out9.ok());
  EXPECT_LE(out9.value().size(), out1.value().size() + 64);
}

TEST(DeflateTest, RejectsTruncatedPayload) {
  std::vector<double> input = MakeSignal("walk", 512);
  Deflate codec;
  auto out = codec.Compress(input, CodecParams{});
  ASSERT_TRUE(out.ok());
  std::vector<uint8_t> truncated(out.value().begin(),
                                 out.value().begin() + out.value().size() / 2);
  auto back = codec.Decompress(truncated);
  EXPECT_FALSE(back.ok());
}

TEST(DeflateTest, EmptyInput) {
  auto out = Deflate::CompressBytes({}, 6);
  ASSERT_TRUE(out.ok());
  auto back = Deflate::DecompressBytes(out.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(FastLzTest, RoundtripsIncompressibleBytes) {
  util::Rng rng(3);
  std::vector<uint8_t> input(5000);
  for (auto& b : input) b = uint8_t(rng.NextU64());
  auto out = FastLz::CompressBytes(input);
  auto back = FastLz::DecompressBytes(out);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), input);
}

TEST(FastLzTest, OverlappingMatchRoundtrip) {
  // "aaaa..." forces self-overlapping copies.
  std::vector<uint8_t> input(1000, uint8_t('a'));
  auto out = FastLz::CompressBytes(input);
  EXPECT_LT(out.size(), 100u);
  auto back = FastLz::DecompressBytes(out);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), input);
}

TEST(FastLzTest, RejectsBadOffset) {
  // tag = copy, offset pointing before the start of output.
  std::vector<uint8_t> payload = {10 /*varint size*/, 0x80, 0x05, 0x00};
  auto back = FastLz::DecompressBytes(payload);
  EXPECT_FALSE(back.ok());
}

TEST(DictionaryTest, CompressesLowCardinality) {
  std::vector<double> input = SteppedSignal(8192, 8);
  Dictionary codec;
  auto out = codec.Compress(input, CodecParams{});
  ASSERT_TRUE(out.ok());
  // 7 distinct values -> 3 bits/value vs 64 raw.
  EXPECT_LT(out.value().size(), 8192 * 8 / 10);
}

TEST(DictionaryTest, RefusesHighCardinality) {
  std::vector<double> input = NoisySignal(1024);
  Dictionary codec;
  auto out = codec.Compress(input, CodecParams{});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(RleTest, SingleRunCompressesToConstantSize) {
  Rle codec;
  auto out = codec.Compress(ConstantSignal(100000), CodecParams{});
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out.value().size(), 32u);
}

TEST(GorillaTest, CompressesSlowlyDriftingSignal) {
  // Identical consecutive values cost 1 bit each in Gorilla.
  std::vector<double> input(4096, 42.0);
  Gorilla codec;
  auto out = codec.Compress(input, CodecParams{});
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out.value().size(), 4096u / 4);
}

TEST(GorillaTest, RoundtripsSpecialValues) {
  std::vector<double> input = {0.0, -0.0, 1e308, -1e308, 5e-324,
                               3.14, 3.14,  0.0,   1.0};
  Gorilla codec;
  auto out = codec.Compress(input, CodecParams{});
  ASSERT_TRUE(out.ok());
  auto back = codec.Decompress(out.value());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(back.value()[i], input[i]) << i;
  }
}

TEST(ChimpTest, BeatsGorillaOnNoisyFloats) {
  std::vector<double> input = QuantizeDecimals(RandomWalk(8192, 5), 6);
  Gorilla gorilla;
  Chimp chimp;
  auto g = gorilla.Compress(input, CodecParams{});
  auto c = chimp.Compress(input, CodecParams{});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(c.ok());
  // CHIMP's flag scheme should not be dramatically worse than Gorilla
  // anywhere and typically wins on noisy data; allow 15% slack.
  EXPECT_LT(static_cast<double>(c.value().size()),
            1.15 * static_cast<double>(g.value().size()));
}

TEST(ElfTest, EraseTailPreservesDecimalValue) {
  util::Rng rng(71);
  for (int i = 0; i < 2000; ++i) {
    double v = QuantizeDecimals({rng.NextUniform(-1e4, 1e4)}, 4)[0];
    double erased = Elf::EraseTail(v, 4);
    EXPECT_EQ(std::round(erased * 1e4) / 1e4, v) << v;
    // The erased value must not have MORE precision than the input.
    uint64_t bits;
    std::memcpy(&bits, &erased, sizeof(bits));
    uint64_t orig;
    std::memcpy(&orig, &v, sizeof(orig));
    // erased is the input with a (possibly empty) zeroed tail.
    EXPECT_EQ(bits & orig, bits);
  }
}

TEST(ElfTest, BeatsPlainChimpOnDecimalData) {
  // Erasing makes the XOR stage see short mantissas: Elf must win
  // clearly on decimal-limited data.
  std::vector<double> input = QuantizeDecimals(RandomWalk(4096, 19), 4);
  Elf elf;
  Chimp chimp;
  CodecParams p;
  p.precision = 4;
  auto e = elf.Compress(input, p);
  auto c = chimp.Compress(input, p);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_LT(static_cast<double>(e.value().size()),
            0.8 * static_cast<double>(c.value().size()));
}

TEST(SprintzTest, SmallOnSmoothSignals) {
  std::vector<double> input = QuantizeDecimals(SineSignal(4096, 512), 4);
  Sprintz codec;
  CodecParams p;
  p.precision = 4;
  auto out = codec.Compress(input, p);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(CompressionRatio(out.value().size(), input.size()), 0.45);
}

TEST(SprintzTest, RejectsHugeMagnitudes) {
  std::vector<double> input = {1e60};
  Sprintz codec;
  CodecParams p;
  p.precision = 4;
  auto out = codec.Compress(input, p);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(BuffTest, LosslessAtConfiguredPrecision) {
  for (int precision : {0, 2, 4, 6}) {
    std::vector<double> input =
        QuantizeDecimals(RandomWalk(500, 13), precision);
    Buff codec;
    CodecParams p;
    p.precision = precision;
    auto out = codec.Compress(input, p);
    ASSERT_TRUE(out.ok()) << precision;
    auto back = codec.Decompress(out.value());
    ASSERT_TRUE(back.ok());
    for (size_t i = 0; i < input.size(); ++i) {
      ASSERT_NEAR(back.value()[i], input[i], 1e-9) << precision << " " << i;
    }
  }
}

TEST(BuffTest, NarrowRangeUsesFewPlanes) {
  // Range < 256 quantization steps -> a single byte plane.
  std::vector<double> input(1000);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = 5.0 + 0.01 * static_cast<double>(i % 25);
  }
  Buff codec;
  CodecParams p;
  p.precision = 2;
  auto out = codec.Compress(input, p);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out.value().size(), 1100u);  // ~1 byte per value + header
}

TEST(RegistryTest, AllArmsResolve) {
  for (const auto& arm : ExtendedLosslessArms(4)) {
    EXPECT_NE(arm.codec, nullptr) << arm.name;
    EXPECT_EQ(arm.codec->kind(), CodecKind::kLossless) << arm.name;
  }
  for (const auto& arm : ExtendedLossyArms(4)) {
    EXPECT_NE(arm.codec, nullptr) << arm.name;
    EXPECT_EQ(arm.codec->kind(), CodecKind::kLossy) << arm.name;
  }
}

TEST(RegistryTest, DefaultSetsMatchPaperCandidates) {
  auto lossless = DefaultLosslessArms(4);
  for (const char* name :
       {"gzip", "snappy", "gorilla", "zlib-1", "zlib-9", "buff", "sprintz"}) {
    EXPECT_TRUE(FindArm(lossless, name).has_value()) << name;
  }
  auto lossy = DefaultLossyArms(4);
  for (const char* name : {"bufflossy", "paa", "pla", "fft", "rrd"}) {
    EXPECT_TRUE(FindArm(lossy, name).has_value()) << name;
  }
}

TEST(RegistryTest, ExtendedSpaceIsRoughlyDoubled) {
  // Fig 15 doubles the decision space relative to the default set.
  EXPECT_GE(ExtendedLosslessArms(4).size(),
            2 * DefaultLosslessArms(4).size() - 1);
}

}  // namespace
}  // namespace adaedge::compress
