// Time-varying network environment layer: trace parsing/validation,
// NetworkModel observation + capacity math, the Network accounting view
// (including the non-monotonic clock regression), DeadlineReward pins,
// OnlineSelector::ObserveLink shift machinery, and the epoch threading
// through OnlineNode / MultiSignalNode / FleetNode.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/compress/registry.h"
#include "adaedge/core/arm_runtime.h"
#include "adaedge/core/fleet.h"
#include "adaedge/core/online_node.h"
#include "adaedge/core/online_selector.h"
#include "adaedge/data/generators.h"
#include "adaedge/sim/constraints.h"
#include "adaedge/sim/network_model.h"

namespace adaedge {
namespace {

using core::OnlineConfig;
using core::OnlineSelector;
using core::RewardModel;
using core::ShiftPolicy;
using core::TargetSpec;
using sim::NetworkModel;
using sim::NetworkTrace;
using sim::TraceSegment;

// ---------------------------------------------------------------------
// Trace parsing / validation / formatting
// ---------------------------------------------------------------------

TEST(NetworkTraceTest, ParsesSegmentsPeriodAndComments) {
  auto parsed = sim::ParseTrace(
      "# cellular handover\n"
      "period 60\n"
      "\n"
      "0 12.5e6 0.005\n"
      "30 0.75e6\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const NetworkTrace& trace = parsed.value();
  ASSERT_EQ(trace.segments.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.period_seconds, 60.0);
  EXPECT_DOUBLE_EQ(trace.segments[0].start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(trace.segments[0].bytes_per_sec, 12.5e6);
  EXPECT_DOUBLE_EQ(trace.segments[0].deadline_seconds, 0.005);
  EXPECT_DOUBLE_EQ(trace.segments[1].start_seconds, 30.0);
  EXPECT_DOUBLE_EQ(trace.segments[1].bytes_per_sec, 0.75e6);
  EXPECT_DOUBLE_EQ(trace.segments[1].deadline_seconds, 0.0);
}

TEST(NetworkTraceTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",                        // no segments
      "0 abc\n",                 // garbage bandwidth
      "0 nan\n",                 // NaN bandwidth
      "0 inf\n",                 // infinite bandwidth
      "0 -5\n",                  // negative bandwidth
      "0 10 -1\n",               // negative deadline
      "5 10\n",                  // first segment not at 0
      "0 10\n0 20\n",            // overlapping starts
      "0 10\n30 20\n30 30\n",    // non-increasing starts
      "0 10\n5 20\n3 30\n",      // decreasing start
      "0 10 1 9\n",              // too many tokens
      "0\n",                     // too few tokens
      "period 5\n0 1\n30 2\n",   // period before the last start
      "period nan\n0 1\n",       // NaN period
      "period 60\nperiod 60\n0 1\n",  // repeated period
      "period\n0 1\n",           // period without a value
  };
  for (const char* text : bad) {
    EXPECT_FALSE(sim::ParseTrace(text).ok()) << "accepted: " << text;
  }
}

TEST(NetworkTraceTest, FormatRoundTripsExactly) {
  NetworkTrace trace;
  trace.segments = {{0.0, 12.5e6, 0.005},
                    {30.0, 1.0 / 3.0, 0.0},
                    {60.25, 0.0, 2.5}};
  trace.period_seconds = 90.125;
  auto reparsed = sim::ParseTrace(sim::FormatTrace(trace));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed.value().segments.size(), trace.segments.size());
  EXPECT_EQ(reparsed.value().period_seconds, trace.period_seconds);
  for (size_t i = 0; i < trace.segments.size(); ++i) {
    EXPECT_EQ(reparsed.value().segments[i].start_seconds,
              trace.segments[i].start_seconds);
    EXPECT_EQ(reparsed.value().segments[i].bytes_per_sec,
              trace.segments[i].bytes_per_sec);
    EXPECT_EQ(reparsed.value().segments[i].deadline_seconds,
              trace.segments[i].deadline_seconds);
  }
}

TEST(NetworkTraceTest, CreateRejectsInvalidTraces) {
  NetworkTrace empty;
  EXPECT_FALSE(NetworkModel::Create(empty).ok());
  NetworkTrace nan_bw;
  nan_bw.segments = {{0.0, std::nan(""), 0.0}};
  EXPECT_FALSE(NetworkModel::Create(nan_bw).ok());
  NetworkTrace ok;
  ok.segments = {{0.0, 100.0, 0.0}};
  EXPECT_TRUE(NetworkModel::Create(ok).ok());
}

// ---------------------------------------------------------------------
// NetworkModel: observation, epochs, capacity integral, presets
// ---------------------------------------------------------------------

NetworkModel ThreeStepModel(double period = 0.0) {
  NetworkTrace trace;
  trace.segments = {{0.0, 100.0, 0.0}, {10.0, 50.0, 0.5}, {20.0, 200.0, 0.0}};
  trace.period_seconds = period;
  auto model = NetworkModel::Create(std::move(trace));
  EXPECT_TRUE(model.ok());
  return model.value();
}

TEST(NetworkModelTest, ObserveStepsEpochsThroughSegments) {
  NetworkModel model = ThreeStepModel();
  EXPECT_TRUE(model.time_varying());

  auto at0 = model.Observe(0.0);
  EXPECT_DOUBLE_EQ(at0.bytes_per_sec, 100.0);
  EXPECT_EQ(at0.epoch, 0u);
  EXPECT_EQ(at0.segment, 0);
  EXPECT_DOUBLE_EQ(at0.segment_start_seconds, 0.0);

  EXPECT_EQ(model.Observe(9.999).epoch, 0u);

  auto at10 = model.Observe(10.0);
  EXPECT_DOUBLE_EQ(at10.bytes_per_sec, 50.0);
  EXPECT_DOUBLE_EQ(at10.deadline_seconds, 0.5);
  EXPECT_EQ(at10.epoch, 1u);
  EXPECT_EQ(at10.segment, 1);
  EXPECT_DOUBLE_EQ(at10.segment_start_seconds, 10.0);

  // The last segment holds forever without a period.
  auto late = model.Observe(1e9);
  EXPECT_DOUBLE_EQ(late.bytes_per_sec, 200.0);
  EXPECT_EQ(late.epoch, 2u);

  // Negative times clamp to the origin.
  EXPECT_EQ(model.Observe(-5.0).epoch, 0u);
}

TEST(NetworkModelTest, LoopingTraceAdvancesEpochAcrossWraps) {
  NetworkModel model = ThreeStepModel(/*period=*/30.0);
  // Epochs keep counting across loop boundaries: a wrap back into
  // segment 0 is still a regime shift.
  EXPECT_EQ(model.Observe(0.0).epoch, 0u);
  EXPECT_EQ(model.Observe(25.0).epoch, 2u);
  auto wrapped = model.Observe(30.0);
  EXPECT_EQ(wrapped.epoch, 3u);
  EXPECT_EQ(wrapped.segment, 0);
  EXPECT_DOUBLE_EQ(wrapped.bytes_per_sec, 100.0);
  EXPECT_DOUBLE_EQ(wrapped.segment_start_seconds, 30.0);
  EXPECT_EQ(model.Observe(65.0).epoch, 6u);  // 2 loops + segment 0
}

TEST(NetworkModelTest, CapacityBytesIntegratesTheTrace) {
  NetworkModel model = ThreeStepModel();
  EXPECT_DOUBLE_EQ(model.CapacityBytes(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.CapacityBytes(5.0), 500.0);
  EXPECT_DOUBLE_EQ(model.CapacityBytes(15.0), 1000.0 + 250.0);
  EXPECT_DOUBLE_EQ(model.CapacityBytes(30.0), 1000.0 + 500.0 + 2000.0);
  EXPECT_DOUBLE_EQ(model.CapacityBytes(-1.0), 0.0);
}

TEST(NetworkModelTest, LoopingCapacityAddsWholePeriods) {
  NetworkModel model = ThreeStepModel(/*period=*/30.0);
  const double one_period = 1000.0 + 500.0 + 2000.0;
  EXPECT_DOUBLE_EQ(model.CapacityBytes(30.0), one_period);
  EXPECT_DOUBLE_EQ(model.CapacityBytes(65.0), 2.0 * one_period + 500.0);
}

TEST(NetworkModelTest, ScalarModelIsStatic) {
  NetworkModel model(5e5);
  EXPECT_FALSE(model.time_varying());
  EXPECT_EQ(model.Observe(1e6).epoch, 0u);
  EXPECT_DOUBLE_EQ(model.BandwidthAt(123.0), 5e5);
  EXPECT_DOUBLE_EQ(model.CapacityBytes(10.0), 5e6);
  // NaN bandwidth sanitizes to a dead link rather than poisoning math.
  EXPECT_DOUBLE_EQ(NetworkModel(std::nan("")).BandwidthAt(0.0), 0.0);
}

TEST(NetworkModelTest, PresetsMatchTheirStories) {
  NetworkModel handover = NetworkModel::Handover3G4G(30.0, 0.005);
  EXPECT_TRUE(handover.time_varying());
  EXPECT_DOUBLE_EQ(handover.BandwidthAt(0.0),
                   sim::BandwidthBytesPerSec(sim::NetworkType::k4G));
  EXPECT_DOUBLE_EQ(handover.BandwidthAt(45.0),
                   sim::BandwidthBytesPerSec(sim::NetworkType::k3G));
  EXPECT_DOUBLE_EQ(handover.BandwidthAt(60.0),
                   sim::BandwidthBytesPerSec(sim::NetworkType::k4G));
  EXPECT_EQ(handover.Observe(60.0).epoch, 2u);
  EXPECT_DOUBLE_EQ(handover.Observe(0.0).deadline_seconds, 0.005);

  NetworkModel satellite = NetworkModel::SatelliteWindows(600.0, 300.0);
  EXPECT_GT(satellite.BandwidthAt(10.0), 0.0);
  EXPECT_DOUBLE_EQ(satellite.BandwidthAt(700.0), 0.0);  // blackout
  EXPECT_GT(satellite.BandwidthAt(900.0), 0.0);         // next pass

  NetworkModel outage = NetworkModel::Outage(8e5, 0.0, 10.0, 5.0);
  EXPECT_DOUBLE_EQ(outage.BandwidthAt(9.0), 8e5);
  EXPECT_DOUBLE_EQ(outage.BandwidthAt(12.0), 0.0);
  EXPECT_DOUBLE_EQ(outage.BandwidthAt(15.0), 8e5);
  EXPECT_DOUBLE_EQ(outage.BandwidthAt(1e6), 8e5);
}

// ---------------------------------------------------------------------
// sim::Network accounting view
// ---------------------------------------------------------------------

TEST(NetworkTest, NonMonotonicClockClampsToLastSeenTime) {
  // Regression: Send/WithinCapacity used to trust a caller clock that
  // went backwards, so a stale `now` made the capacity check compare
  // bytes against a window that ended before bytes were sent.
  sim::Network net(1000.0);
  net.Send(500, 5.0);
  // now = 1.0 is in the past; the link clamps to t = 5 where 500 bytes
  // fit comfortably (the old code computed capacity(1.0) = 1000 * 1 and
  // could flip on tighter numbers).
  EXPECT_TRUE(net.WithinCapacity(1.0));
  net.Send(5000, 2.0);  // also stale; accounted at t = 5
  EXPECT_FALSE(net.WithinCapacity(5.0));  // 5500 > capacity(5) = 5000
  EXPECT_TRUE(net.WithinCapacity(6.0));
  EXPECT_EQ(net.bytes_sent(), 5500u);
}

TEST(NetworkTest, ModelBackedCapacityFollowsTheTrace) {
  auto model = std::make_shared<const NetworkModel>(
      NetworkModel::Outage(1000.0, 0.0, 10.0, 1e9));
  sim::Network net(model);
  // After t = 10 the link is down: capacity stops growing at 10 KB.
  net.Send(10000, 20.0);
  EXPECT_TRUE(net.WithinCapacity(20.0));
  net.Send(200, 25.0);
  EXPECT_FALSE(net.WithinCapacity(1e6));
  EXPECT_DOUBLE_EQ(net.bytes_per_sec(), 0.0);  // bandwidth at last-seen t
}

// ---------------------------------------------------------------------
// DeadlineReward formula pins
// ---------------------------------------------------------------------

TEST(DeadlineRewardTest, FormulaPins) {
  // No budget: pass-through.
  EXPECT_DOUBLE_EQ(RewardModel::DeadlineReward(0.8, 4096, 1.0, 10.0, 0.0),
                   0.8);
  EXPECT_DOUBLE_EQ(RewardModel::DeadlineReward(0.8, 4096, 1.0, 10.0, -1.0),
                   0.8);
  // Within budget: base reward unchanged.
  EXPECT_DOUBLE_EQ(
      RewardModel::DeadlineReward(0.8, 1000, 0.01, 1e6, 0.05), 0.8);
  // Zero bytes transmit for free (compress time still counts).
  EXPECT_DOUBLE_EQ(RewardModel::DeadlineReward(0.8, 0, 0.01, 0.0, 0.05),
                   0.8);
  // Dead link with bytes to move: reward 0.
  EXPECT_DOUBLE_EQ(RewardModel::DeadlineReward(0.8, 100, 0.0, 0.0, 0.05),
                   0.0);
  // Over budget: scaled by budget/latency. latency = 0.1 + 1000/1e4 = 0.2.
  EXPECT_DOUBLE_EQ(
      RewardModel::DeadlineReward(0.8, 1000, 0.1, 1e4, 0.1),
      0.8 * 0.1 / 0.2);
  // Scaling clamps to [0, 1].
  EXPECT_DOUBLE_EQ(
      RewardModel::DeadlineReward(-4.0, 1000, 0.1, 1e4, 0.1), 0.0);
  // Infinite bandwidth (no link observed yet): transmit is free.
  EXPECT_DOUBLE_EQ(
      RewardModel::DeadlineReward(0.9, 1 << 30, 0.0,
                                  std::numeric_limits<double>::infinity(),
                                  0.01),
      0.9);
}

// ---------------------------------------------------------------------
// OnlineSelector::ObserveLink shift machinery
// ---------------------------------------------------------------------

/// Delegating lossy codec pinned to one target ratio: feasible exactly
/// when its pinned ratio fits under the selector's target, which makes
/// shift re-gating observable arm by arm.
class PinnedRatioCodec final : public compress::Codec {
 public:
  PinnedRatioCodec(std::shared_ptr<const compress::Codec> inner,
                   double pinned_ratio)
      : inner_(std::move(inner)), pinned_ratio_(pinned_ratio) {}

  compress::CodecId id() const override { return inner_->id(); }
  compress::CodecKind kind() const override { return inner_->kind(); }
  size_t MaxCompressedSize(size_t value_count) const override {
    return inner_->MaxCompressedSize(value_count);
  }
  util::Result<std::vector<uint8_t>> Compress(
      std::span<const double> values,
      const compress::CodecParams& params) const override {
    compress::CodecParams pinned = params;
    pinned.target_ratio = pinned_ratio_;
    return inner_->Compress(values, pinned);
  }
  util::Status CompressInto(std::span<const double> values,
                            const compress::CodecParams& params,
                            std::vector<uint8_t>& out) const override {
    compress::CodecParams pinned = params;
    pinned.target_ratio = pinned_ratio_;
    return inner_->CompressInto(values, pinned, out);
  }
  util::Result<std::vector<double>> Decompress(
      std::span<const uint8_t> payload) const override {
    return inner_->Decompress(payload);
  }
  bool SupportsRatio(double ratio, size_t value_count) const override {
    return pinned_ratio_ <= ratio &&
           inner_->SupportsRatio(pinned_ratio_, value_count);
  }

 private:
  std::shared_ptr<const compress::Codec> inner_;
  double pinned_ratio_;
};

std::vector<compress::CodecArm> PinnedPool() {
  const std::pair<const char*, double> tiers[] = {
      {"mild", 0.5}, {"mid", 0.125}, {"aggressive", 0.03125}};
  auto paa = compress::GetCodec(compress::CodecId::kPaa);
  std::vector<compress::CodecArm> arms;
  for (const auto& [name, ratio] : tiers) {
    compress::CodecArm arm;
    arm.name = name;
    arm.codec = std::make_shared<PinnedRatioCodec>(paa, ratio);
    arms.push_back(std::move(arm));
  }
  return arms;
}

OnlineConfig PinnedPoolConfig(double target_ratio) {
  OnlineConfig config;
  config.target_ratio = target_ratio;
  config.force_lossy = true;
  config.lossy_arms = PinnedPool();
  config.bandit.epsilon = 0.0;  // deterministic greedy selection
  return config;
}

std::vector<std::vector<double>> TestSegments(size_t count,
                                              uint64_t seed = 7) {
  data::CbfStream stream(seed);
  std::vector<std::vector<double>> segments(count,
                                            std::vector<double>(1024));
  for (auto& segment : segments) stream.Fill(segment);
  return segments;
}

TEST(ObserveLinkTest, RetargetsAndKeepsTargetThroughOutage) {
  OnlineSelector selector(PinnedPoolConfig(1.0),
                          TargetSpec::AggAccuracy(query::AggKind::kMax));
  EXPECT_DOUBLE_EQ(selector.link_bandwidth(),
                   std::numeric_limits<double>::infinity());
  selector.ObserveLink(0, 1e6, 0.5, 0.0);
  EXPECT_DOUBLE_EQ(selector.target_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(selector.link_bandwidth(), 1e6);
  // Outage: ratio <= 0 keeps the current target, bandwidth still updates.
  selector.ObserveLink(1, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(selector.target_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(selector.link_bandwidth(), 0.0);
  // Same-epoch observations are no-ops even with different payloads.
  selector.ObserveLink(1, 9e9, 0.9, 1.0);
  EXPECT_DOUBLE_EQ(selector.target_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(selector.link_bandwidth(), 0.0);
}

TEST(ObserveLinkTest, ShiftRegatesInfeasibleArmsAndRestoresThem) {
  // Start at a target only mid/aggressive can reach. (The selection
  // filter zero-teaches the bandit whenever it picks the infeasible mild
  // arm, so mild's estimate cannot be relied on across the shift — the
  // rewarm reset below levels the field deliberately.)
  OnlineConfig config = PinnedPoolConfig(0.2);
  config.on_shift = ShiftPolicy::kRewarm;
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kMax));
  auto segments = TestSegments(16);
  for (size_t i = 0; i < 3; ++i) {
    auto outcome = selector.Process(i, 0.0, segments[i]);
    ASSERT_TRUE(outcome.ok());
    EXPECT_NE(outcome.value().arm_name, "mild");
  }
  selector.ObserveLink(1, 1e6, 0.2, 0.0);  // install: gates mild
  // The link recovers: mild must be restored AND, after the rewarm reset
  // (every estimate back to the optimistic 1.0), explored like any other
  // arm — greedy selection prefers untried optimistic arms, so a few
  // segments cover the whole pool. A broken restore would leave mild's
  // pull count at zero forever.
  selector.ObserveLink(2, 8e6, 1.0, 0.0);
  std::map<std::string, int> used;
  for (size_t i = 3; i < segments.size(); ++i) {
    auto outcome = selector.Process(i, 0.0, segments[i]);
    ASSERT_TRUE(outcome.ok());
    ++used[outcome.value().arm_name];
  }
  EXPECT_GE(used["mild"], 1);
  EXPECT_GE(used["mid"], 1);
  EXPECT_GE(used["aggressive"], 1);
}

TEST(ObserveLinkTest, UserGatingSurvivesShifts) {
  OnlineSelector selector(PinnedPoolConfig(1.0),
                          TargetSpec::AggAccuracy(query::AggKind::kMax));
  auto segments = TestSegments(24);
  auto first = selector.Process(0, 0.0, segments[0]);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(selector.SetArmEnabled("mid", false).ok());
  // Two shifts (gate everything below 0.2, then restore): the shift
  // machinery must re-enable only what IT disabled, not the user's gate.
  selector.ObserveLink(1, 1e6, 0.2, 0.0);
  selector.ObserveLink(2, 8e6, 1.0, 0.0);
  for (size_t i = 1; i < segments.size(); ++i) {
    auto outcome = selector.Process(i, 0.0, segments[i]);
    ASSERT_TRUE(outcome.ok());
    EXPECT_NE(outcome.value().arm_name, "mid");
  }
}

TEST(ObserveLinkTest, DiscountShiftDecaysEstimatesAndCounts) {
  OnlineConfig config = PinnedPoolConfig(1.0);
  config.on_shift = ShiftPolicy::kDiscount;
  config.shift_keep_fraction = 0.5;
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kMax));
  auto segments = TestSegments(9);
  for (size_t i = 0; i < segments.size(); ++i) {
    ASSERT_TRUE(selector.Process(i, 0.0, segments[i]).ok());
  }
  selector.ObserveLink(1, 1e6, 1.0, 0.0);  // first: install only
  auto before = selector.ExportPolicy();
  selector.ObserveLink(2, 1e6, 0.9, 0.0);  // a real shift
  auto after = selector.ExportPolicy();
  ASSERT_EQ(after.lossy.size(), before.lossy.size());
  bool any_pulled = false;
  for (size_t i = 0; i < before.lossy.size(); ++i) {
    // initial_value = 1.0: value' = 1 + 0.5 * (value - 1).
    EXPECT_NEAR(after.lossy[i].value,
                1.0 + 0.5 * (before.lossy[i].value - 1.0), 1e-12);
    EXPECT_EQ(after.lossy[i].pulls, before.lossy[i].pulls / 2);
    any_pulled = any_pulled || before.lossy[i].pulls > 0;
  }
  EXPECT_TRUE(any_pulled);
}

TEST(ObserveLinkTest, RewarmShiftResetsWithoutEstimator) {
  OnlineConfig config = PinnedPoolConfig(1.0);
  config.on_shift = ShiftPolicy::kRewarm;
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kMax));
  auto segments = TestSegments(6);
  for (size_t i = 0; i < segments.size(); ++i) {
    ASSERT_TRUE(selector.Process(i, 0.0, segments[i]).ok());
  }
  selector.ObserveLink(1, 1e6, 1.0, 0.0);
  selector.ObserveLink(2, 1e6, 0.9, 0.0);
  for (const auto& stats : selector.ExportPolicy().lossy) {
    EXPECT_DOUBLE_EQ(stats.value, 1.0);  // back to the optimistic prior
    EXPECT_EQ(stats.pulls, 0u);
  }
}

TEST(ObserveLinkTest, DeadlineShapingScalesRewardOnSlowLinks) {
  auto segments = TestSegments(1, 11);
  OnlineConfig plain = PinnedPoolConfig(1.0);
  OnlineConfig shaped = PinnedPoolConfig(1.0);
  shaped.deadline.enabled = true;
  OnlineSelector baseline(plain,
                          TargetSpec::AggAccuracy(query::AggKind::kMax));
  OnlineSelector deadline(shaped,
                          TargetSpec::AggAccuracy(query::AggKind::kMax));
  // 1 B/s link with a 1 ms budget: any payload is hopelessly late.
  baseline.ObserveLink(0, 1.0, -1.0, 0.001);
  deadline.ObserveLink(0, 1.0, -1.0, 0.001);
  auto base = baseline.Process(0, 0.0, segments[0]);
  auto late = deadline.Process(0, 0.0, segments[0]);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(late.ok());
  // Identical selection and payload; only the fed-back reward differs.
  EXPECT_EQ(late.value().arm_name, base.value().arm_name);
  EXPECT_EQ(late.value().segment.SizeBytes(),
            base.value().segment.SizeBytes());
  EXPECT_GT(base.value().reward, 0.1);
  EXPECT_LT(late.value().reward, 0.01);
}

TEST(ObserveLinkTest, ValidatesShiftAndDeadlineConfig) {
  OnlineConfig config;
  config.shift_keep_fraction = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config.shift_keep_fraction = 0.5;
  config.deadline.enabled = true;
  config.deadline.budget_seconds = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  config.deadline.budget_seconds =
      std::numeric_limits<double>::infinity();
  EXPECT_FALSE(config.Validate().ok());
  config.deadline.budget_seconds = 0.05;
  EXPECT_TRUE(config.Validate().ok());
}

// ---------------------------------------------------------------------
// Epoch threading: OnlineNode / MultiSignalNode / FleetNode
// ---------------------------------------------------------------------

TEST(OnlineNodeNetworkTest, EpochShiftRederivesTargetRatio) {
  core::OnlineNodeConfig config;
  config.ingest_points_per_sec = 1e5;
  config.network_model = std::make_shared<const NetworkModel>(
      NetworkModel::Outage(8e5, 1e5, 10.0, 10.0));
  core::OnlineNode node(config,
                        TargetSpec::AggAccuracy(query::AggKind::kSum));
  // Derived from bandwidth at t = 0: 8e5 / (8 * 1e5) = 1.0.
  EXPECT_DOUBLE_EQ(node.selector().target_ratio(), 1.0);
  auto segments = TestSegments(2, 13);
  ASSERT_TRUE(node.Ingest(0, 1.0, segments[0]).ok());
  EXPECT_DOUBLE_EQ(node.selector().target_ratio(), 1.0);
  // Inside the degraded window the target re-derives to 0.125.
  ASSERT_TRUE(node.Ingest(1, 11.0, segments[1]).ok());
  EXPECT_DOUBLE_EQ(node.selector().target_ratio(), 0.125);
  EXPECT_DOUBLE_EQ(node.selector().link_bandwidth(), 1e5);
}

TEST(MultiSignalNodeNetworkTest, SharedLinkShiftReallocatesShares) {
  auto model = std::make_shared<const NetworkModel>(
      NetworkModel::Outage(8e5, 2e5, 10.0, 10.0));
  core::MultiSignalNode node(
      model, TargetSpec::AggAccuracy(query::AggKind::kSum));
  int a = node.AddSignal("a", 1e5);
  int b = node.AddSignal("b", 1e5);
  // Initial split from bandwidth at t = 0: 4e5 each => ratio 0.5.
  EXPECT_NEAR(node.TargetRatioOf(a).value(), 0.5, 1e-12);
  std::vector<double> segment(256, 1.0);
  ASSERT_TRUE(node.Ingest(a, 0, 11.0, segment).ok());  // degraded epoch
  EXPECT_NEAR(node.TargetRatioOf(a).value(), 0.125, 1e-12);
  EXPECT_NEAR(node.TargetRatioOf(b).value(), 0.125, 1e-12);
  ASSERT_TRUE(node.Ingest(b, 1, 25.0, segment).ok());  // recovered
  EXPECT_NEAR(node.TargetRatioOf(a).value(), 0.5, 1e-12);
  EXPECT_NEAR(node.TargetRatioOf(b).value(), 0.5, 1e-12);
}

TEST(FleetNetworkTest, ShardsDivergeAcrossLinksAndMergeRespectsBands) {
  core::FleetConfig config;
  config.shards = 2;
  config.batch_segments = 1;
  config.merge_interval_batches = 1;
  config.network_points_per_sec = 1e5;
  config.shard_networks = {
      std::make_shared<const NetworkModel>(8e5),
      std::make_shared<const NetworkModel>(
          NetworkModel::Outage(8e5, 1e5, 10.0, 1e9)),
  };
  auto fleet = core::FleetNode::Create(
      config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  core::FleetNode& node = *fleet.value();
  node.Start();
  // One sensor per shard, ingested inside shard 1's degraded window.
  uint64_t sensor0 = 0;
  while (node.ShardOf(sensor0) != 0) ++sensor0;
  uint64_t sensor1 = 0;
  while (node.ShardOf(sensor1) != 1) ++sensor1;
  auto segments = TestSegments(8, 17);
  // Let shard 1 observe its degraded link (first batch -> ObserveLink
  // re-derives 0.125) before shard 0 gets any work: a shard 0 batch
  // completing first would trigger a merge while both shards still sit
  // in band 0 on their t = 0 targets.
  ASSERT_TRUE(node.Ingest(sensor1, segments[0], 11.0).ok());
  for (int spins = 0;
       node.shard_selector(1).target_ratio() != 0.125 && spins < 10000;
       ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(node.shard_selector(1).target_ratio(), 0.125);
  for (size_t i = 0; i < segments.size(); ++i) {
    ASSERT_TRUE(node.Ingest(sensor0, segments[i], 11.0).ok());
    if (i > 0) ASSERT_TRUE(node.Ingest(sensor1, segments[i], 11.0).ok());
  }
  node.Stop();
  // Shard 0 stayed at ratio 1.0 (band 0); shard 1 re-derived 0.125
  // (band 3). Different regimes: the periodic merge never blended them.
  EXPECT_DOUBLE_EQ(node.shard_selector(0).target_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(node.shard_selector(1).target_ratio(), 0.125);
  EXPECT_EQ(node.merges(), 0u);
}

TEST(FleetNetworkTest, SameRegimeShardsStillMerge) {
  core::FleetConfig config;
  config.shards = 2;
  config.batch_segments = 1;
  config.merge_interval_batches = 1;
  config.network_points_per_sec = 1e5;
  config.shard_networks = {std::make_shared<const NetworkModel>(8e5),
                           std::make_shared<const NetworkModel>(8e5)};
  auto fleet = core::FleetNode::Create(
      config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  ASSERT_TRUE(fleet.ok());
  core::FleetNode& node = *fleet.value();
  node.Start();
  auto segments = TestSegments(8, 19);
  for (size_t i = 0; i < segments.size(); ++i) {
    ASSERT_TRUE(
        node.Ingest(static_cast<uint64_t>(i), segments[i], 1.0).ok());
  }
  node.Stop();
  EXPECT_GT(node.merges(), 0u);
}

TEST(FleetNetworkTest, ValidateRejectsNullShardNetworks) {
  core::FleetConfig config;
  config.shard_networks = {nullptr};
  EXPECT_FALSE(config.Validate().ok());
  config.shard_networks = {std::make_shared<const NetworkModel>(8e5)};
  config.network_points_per_sec = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  config.network_points_per_sec = 0.0;
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace adaedge
