// Integration tests for the online selector, offline node, pipeline and
// baselines: the end-to-end behaviours the paper's figures rely on.

#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/baseline/baselines.h"
#include "adaedge/core/evaluation.h"
#include "adaedge/core/offline_node.h"
#include "adaedge/core/online_selector.h"
#include "adaedge/core/pipeline.h"
#include "adaedge/data/generators.h"
#include "adaedge/ml/decision_tree.h"
#include "adaedge/ml/kmeans.h"
#include "adaedge/sim/sensor_client.h"

namespace adaedge::core {
namespace {

constexpr size_t kSegmentLength = 1024;  // 8 CBF instances per segment

std::vector<std::vector<double>> MakeCbfSegments(size_t count,
                                                 uint64_t seed = 3) {
  data::CbfStream stream(seed);
  std::vector<std::vector<double>> segments(count);
  for (auto& segment : segments) {
    segment.resize(kSegmentLength);
    stream.Fill(segment);
  }
  return segments;
}

std::shared_ptr<const ml::Model> TrainCbfModel() {
  auto dataset = data::MakeCbfDataset(600, 128, 9);
  return std::shared_ptr<const ml::Model>(
      ml::DecisionTree::Train(dataset, ml::TreeConfig{}));
}

TEST(OnlineSelectorTest, LosslessWhenTargetGenerous) {
  OnlineConfig config;
  config.target_ratio = 1.0;
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeCbfSegments(30);
  for (size_t i = 0; i < segments.size(); ++i) {
    auto outcome = selector.Process(i, i * 0.005, segments[i]);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_FALSE(outcome.value().used_lossy) << "segment " << i;
    EXPECT_TRUE(outcome.value().met_target);
    EXPECT_DOUBLE_EQ(outcome.value().accuracy, 1.0);
  }
  EXPECT_TRUE(selector.lossless_active());
}

TEST(OnlineSelectorTest, FallsBackToLossyWhenTargetHarsh) {
  OnlineConfig config;
  config.target_ratio = 0.05;  // far below any lossless ratio on CBF
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeCbfSegments(30);
  size_t lossy = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    auto outcome = selector.Process(i, i * 0.005, segments[i]);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().met_target) << i;
    if (outcome.value().used_lossy) ++lossy;
  }
  EXPECT_GT(lossy, 25u);
  EXPECT_FALSE(selector.lossless_active());
}

TEST(OnlineSelectorTest, ConvergesToGoodLossyArmForSum) {
  // At aggressive ratios, PAA/FFT preserve Sum far better than RRD.
  OnlineConfig config;
  config.target_ratio = 0.05;
  config.bandit.epsilon = 0.05;
  config.bandit.seed = 11;
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeCbfSegments(200, 7);
  double late_accuracy = 0.0;
  size_t late_count = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    auto outcome = selector.Process(i, i * 0.005, segments[i]);
    ASSERT_TRUE(outcome.ok());
    if (i >= 150) {
      late_accuracy += outcome.value().accuracy;
      ++late_count;
    }
  }
  EXPECT_GT(late_accuracy / late_count, 0.95);
}

TEST(OnlineSelectorTest, LosslessOnlyFailsOnHarshTarget) {
  OnlineConfig config;
  config.target_ratio = 0.05;
  config.allow_lossy = false;
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeCbfSegments(5);
  auto outcome = selector.Process(0, 0.0, segments[0]);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), util::StatusCode::kUnavailable);
}

TEST(OnlineSelectorTest, ForceLossyUsesOnlyLossyArms) {
  OnlineConfig config;
  config.target_ratio = 0.5;
  config.force_lossy = true;
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeCbfSegments(10);
  for (size_t i = 0; i < segments.size(); ++i) {
    auto outcome = selector.Process(i, 0.0, segments[i]);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().used_lossy);
  }
}

TEST(OnlineConfigTest, ValidateRejectsZeroRecheckInterval) {
  OnlineConfig config;
  config.lossless_recheck_interval = 0;  // would divide by zero
  Status status = config.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  auto selector = OnlineSelector::Create(
      config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  EXPECT_FALSE(selector.ok());
  EXPECT_EQ(selector.status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(OnlineConfigTest, ValidateRejectsNonPositiveTargetRatio) {
  OnlineConfig config;
  config.target_ratio = 0.0;
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
  config.target_ratio = -0.5;
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(OnlineConfigTest, ValidateRejectsNonPositivePatience) {
  OnlineConfig config;
  config.lossless_patience = 0;
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
  config.lossless_patience = -3;
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(OnlineConfigTest, ValidateRejectsBadBanditRanges) {
  OnlineConfig config;
  config.bandit.epsilon = 1.5;
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
  config.bandit.epsilon = 0.1;
  config.bandit.step = -0.1;
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(OnlineConfigTest, DefaultsValidateAndCreateWorks) {
  OnlineConfig config;
  EXPECT_TRUE(config.Validate().ok());
  auto selector = OnlineSelector::Create(
      config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  ASSERT_TRUE(selector.ok());
  auto segments = MakeCbfSegments(3);
  EXPECT_TRUE(selector.value()->Process(0, 0.0, segments[0]).ok());
}

TEST(OnlineSelectorTest, ZeroRecheckIntervalDoesNotDivideByZero) {
  // The unchecked constructor path must tolerate a 0 interval (the
  // checked path rejects it): the re-probe is simply disabled.
  OnlineConfig config;
  config.target_ratio = 0.05;
  config.lossless_recheck_interval = 0;
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeCbfSegments(20);
  for (size_t i = 0; i < segments.size(); ++i) {
    ASSERT_TRUE(selector.Process(i, 0.0, segments[i]).ok());
  }
  EXPECT_FALSE(selector.lossless_active());
}

TEST(OfflineNodeTest, StaysWithinBudgetAndDegradesGracefully) {
  OfflineConfig config;
  config.storage_budget_bytes = 256 << 10;  // 256 KB
  config.bandit.seed = 21;
  auto model = TrainCbfModel();
  OfflineNode node(config, TargetSpec::MlAccuracy(model, 128));
  auto segments = MakeCbfSegments(200, 13);  // ~1.6 MB raw: 6x overcommit
  std::unordered_map<uint64_t, std::vector<double>> originals;
  for (size_t i = 0; i < segments.size(); ++i) {
    originals[i] = segments[i];
    ASSERT_TRUE(node.Ingest(i, i * 0.005, segments[i]).ok())
        << "segment " << i;
    EXPECT_LE(node.store().budget()->used(), config.storage_budget_bytes);
  }
  EXPECT_EQ(node.store().count(), segments.size());  // nothing deleted
  EXPECT_GT(node.recode_ops(), 0u);

  TargetEvaluator eval(TargetSpec::MlAccuracy(model, 128));
  auto quality = EvaluateRetained(node.store(), originals, eval);
  ASSERT_TRUE(quality.ok());
  // 6x overcommit forces lossy recoding, but the workload should retain
  // most of its accuracy — and fresh segments stay (nearly) exact.
  EXPECT_GT(quality.value().accuracy, 0.6);
  EXPECT_GT(quality.value().fresh_accuracy, 0.95);
}

TEST(OfflineNodeTest, LruKeepsAccessedSegmentsAccurate) {
  OfflineConfig config;
  config.storage_budget_bytes = 128 << 10;
  auto model = TrainCbfModel();
  OfflineNode node(config, TargetSpec::MlAccuracy(model, 128));
  auto segments = MakeCbfSegments(120, 17);
  for (size_t i = 0; i < segments.size(); ++i) {
    ASSERT_TRUE(node.Ingest(i, i * 0.005, segments[i]).ok());
    // Keep touching segment 0: LRU must shield it from recoding.
    (void)node.store().Get(0);
  }
  auto seg0 = node.store().Peek(0);
  ASSERT_TRUE(seg0.ok());
  EXPECT_NE(seg0.value().meta().state, SegmentState::kLossy);
}

TEST(OfflineNodeTest, CodecDbBaselineFailsAtRecodingBudget) {
  OfflineConfig config;
  config.storage_budget_bytes = 64 << 10;
  config = baseline::CodecDbOffline(config);
  OfflineNode node(config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeCbfSegments(100, 19);
  Status status = Status::Ok();
  size_t ingested = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    status = node.Ingest(i, i * 0.005, segments[i]);
    if (!status.ok()) break;
    ++ingested;
  }
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_LT(ingested, segments.size());
  EXPECT_GT(ingested, 5u);  // it worked fine until the budget bit
}

TEST(OfflineNodeTest, MeteredComputeDefersRecodingUnderSlowCpu) {
  OfflineConfig config;
  config.storage_budget_bytes = 128 << 10;
  config.meter_compute = true;
  config.cpu_scale = 1e5;  // pathologically slow edge CPU
  OfflineNode node(config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeCbfSegments(60, 23);
  for (size_t i = 0; i < segments.size(); ++i) {
    Status status = node.Ingest(i, i * 1e-4, segments[i]);
    if (!status.ok()) {
      // Expected: recoding starved, hard capacity eventually breached.
      EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted);
      EXPECT_GT(node.deferred_recodes(), 0u);
      return;
    }
  }
  // If ingestion survived, deferrals must still have been recorded.
  EXPECT_GT(node.deferred_recodes(), 0u);
}

TEST(OfflineConfigTest, ValidateRejectsBadShrinkFactor) {
  OfflineConfig config;
  config.shrink_factor = 1.0;  // would wedge the recode drain
  Status status = config.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  config.shrink_factor = 0.0;  // impossible target ratios
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
  config.shrink_factor = -0.5;
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
  auto node = OfflineNode::Create(
      config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  EXPECT_FALSE(node.ok());
  EXPECT_EQ(node.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(OfflineConfigTest, ValidateRejectsBadRecodeThreshold) {
  OfflineConfig config;
  config.recode_threshold = 0.0;  // recoding would never sleep
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
  config.recode_threshold = 1.5;  // would never wake before hard capacity
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(OfflineConfigTest, ValidateRejectsBadThreadCountsAndBudget) {
  OfflineConfig config;
  config.storage_budget_bytes = 0;
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
  config = OfflineConfig{};
  config.recode_threads = 0;
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
  config = OfflineConfig{};
  config.compress_threads = -1;
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
  config = OfflineConfig{};
  config.cpu_scale = 0.0;
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
  config = OfflineConfig{};
  config.bandit.epsilon = 1.5;
  EXPECT_EQ(config.Validate().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(OfflineConfigTest, DefaultsValidateAndCreateWorks) {
  OfflineConfig config;
  config.storage_budget_bytes = 128 << 10;
  EXPECT_TRUE(config.Validate().ok());
  auto node = OfflineNode::Create(
      config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  ASSERT_TRUE(node.ok());
  auto segments = MakeCbfSegments(3);
  EXPECT_TRUE(node.value()->Ingest(0, 0.0, segments[0]).ok());
  EXPECT_EQ(node.value()->store().count(), 1u);
}

TEST(BaselineTest, FixedPairUsesExactlyConfiguredArms) {
  OfflineConfig base;
  base.storage_budget_bytes = 128 << 10;
  auto config =
      baseline::FixedPairOffline(base, "sprintz", "bufflossy");
  ASSERT_EQ(config.lossless_arms.size(), 1u);
  EXPECT_EQ(config.lossless_arms[0].name, "sprintz");
  ASSERT_EQ(config.lossy_arms.size(), 1u);
  EXPECT_EQ(config.lossy_arms[0].name, "bufflossy");

  OfflineNode node(config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeCbfSegments(60, 29);
  for (size_t i = 0; i < segments.size(); ++i) {
    ASSERT_TRUE(node.Ingest(i, i * 0.005, segments[i]).ok());
  }
  // Every stored segment is sprintz (lossless) or bufflossy (recoded).
  for (uint64_t id : node.store().AllIds()) {
    auto segment = node.store().Peek(id);
    ASSERT_TRUE(segment.ok());
    auto codec = segment.value().meta().codec;
    EXPECT_TRUE(codec == compress::CodecId::kSprintz ||
                codec == compress::CodecId::kBuffLossy ||
                codec == compress::CodecId::kRaw)
        << static_cast<int>(codec);
  }
}

TEST(BaselineTest, CodecDbOnlinePinsBestLosslessArm) {
  OnlineConfig config;
  config.target_ratio = 1.0;
  baseline::CodecDbOnline codecdb(config,
                                  TargetSpec::AggAccuracy(
                                      query::AggKind::kSum),
                                  /*sample_segments=*/4);
  auto segments = MakeCbfSegments(20, 31);
  for (size_t i = 0; i < segments.size(); ++i) {
    auto outcome = codecdb.Process(i, 0.0, segments[i]);
    ASSERT_TRUE(outcome.ok());
  }
  // On smooth quantized CBF, Sprintz is the expected static winner.
  EXPECT_EQ(codecdb.chosen_arm(), "sprintz");
}

TEST(BaselineTest, CodecDbOnlineFailsBelowLosslessRange) {
  OnlineConfig config;
  config.target_ratio = 0.05;
  baseline::CodecDbOnline codecdb(
      config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeCbfSegments(3, 37);
  auto outcome = codecdb.Process(0, 0.0, segments[0]);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), util::StatusCode::kUnavailable);
}

TEST(BaselineTest, TvStoreOnlineAlwaysPla) {
  OnlineConfig base;
  base.target_ratio = 0.3;
  auto config = baseline::TvStoreOnline(base);
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kMax));
  auto segments = MakeCbfSegments(10, 41);
  for (size_t i = 0; i < segments.size(); ++i) {
    auto outcome = selector.Process(i, 0.0, segments[i]);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().arm_name, "pla");
  }
}

TEST(PipelineTest, CompressesAllSegmentsAcrossThreads) {
  PipelineConfig pipe_config;
  pipe_config.compress_threads = 4;
  pipe_config.segment_length = kSegmentLength;
  OnlineConfig online;
  online.target_ratio = 1.0;
  Pipeline pipeline(pipe_config, online,
                    TargetSpec::AggAccuracy(query::AggKind::kSum));
  pipeline.Start();
  constexpr size_t kSegments = 64;
  std::thread consumer([&] {
    size_t received = 0;
    while (auto out = pipeline.PopCompressed()) {
      EXPECT_GT(out->segment.SizeBytes(), 0u);
      ++received;
    }
    EXPECT_EQ(received, kSegments);
  });
  auto segments = MakeCbfSegments(kSegments, 43);
  for (auto& segment : segments) {
    ASSERT_TRUE(pipeline.Ingest(std::move(segment), 0.0));
  }
  pipeline.Stop();
  consumer.join();
  EXPECT_EQ(pipeline.segments_in(), kSegments);
  EXPECT_EQ(pipeline.segments_out(), kSegments);
  EXPECT_LT(pipeline.bytes_out(), pipeline.bytes_in());
}

}  // namespace
}  // namespace adaedge::core
