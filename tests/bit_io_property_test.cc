// Seeded property tests for the word-buffered bit I/O layer.
//
// The reference model is a naive bit-at-a-time MSB-first packer: whatever
// the 64-bit-accumulator BitWriter and the word-at-a-time BitReader do
// internally, the bytes on the wire and the values read back must match
// it exactly, for every width 0..64 and every alignment.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/util/bit_io.h"
#include "adaedge/util/rng.h"
#include "adaedge/util/simd.h"

namespace adaedge::util {
namespace {

uint64_t MaskLow(int count) {
  return count >= 64 ? ~uint64_t{0} : (uint64_t{1} << count) - 1;
}

// Naive MSB-first packer: one bit at a time into a byte vector. Slow and
// obviously correct.
class ReferencePacker {
 public:
  void Write(uint64_t bits, int count) {
    if (count <= 0) return;
    bits &= MaskLow(count);
    for (int i = count - 1; i >= 0; --i) PushBit((bits >> i) & 1);
  }

  void Align() {
    while (nbits_ % 8 != 0) PushBit(0);
  }

  std::vector<uint8_t> Finish() {
    Align();
    return bytes_;
  }

 private:
  void PushBit(uint64_t b) {
    if (nbits_ % 8 == 0) bytes_.push_back(0);
    if (b) bytes_.back() |= static_cast<uint8_t>(1u << (7 - nbits_ % 8));
    ++nbits_;
  }

  std::vector<uint8_t> bytes_;
  size_t nbits_ = 0;
};

struct Field {
  uint64_t value;
  int width;
};

// Random width-0..64 fields, deliberately hitting the accumulator edges
// (width 64 fields, and runs of 1-bit writes that straddle word flushes).
std::vector<Field> RandomFields(Rng& rng, size_t n) {
  std::vector<Field> fields(n);
  for (auto& f : fields) {
    switch (rng.NextBelow(4)) {
      case 0:
        f.width = static_cast<int>(rng.NextBelow(65));  // 0..64 uniform
        break;
      case 1:
        f.width = 64;  // exact word
        break;
      case 2:
        f.width = 1;  // worst case per-bit overhead
        break;
      default:
        f.width = static_cast<int>(1 + rng.NextBelow(8));  // small fields
        break;
    }
    f.value = rng.NextU64();
  }
  return fields;
}

// The writer must be byte-identical to the reference packer, and the
// reader must give back every field (masked to its width), for many
// random sequences of widths 0..64.
TEST(BitIoPropertyTest, RandomSweepMatchesReferencePacker) {
  Rng rng(0xb17c0de5);
  for (int round = 0; round < 50; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::vector<Field> fields = RandomFields(rng, 1 + rng.NextBelow(400));

    BitWriter writer;
    ReferencePacker reference;
    for (const Field& f : fields) {
      writer.WriteBits(f.value, f.width);
      reference.Write(f.value, f.width);
    }
    std::vector<uint8_t> got = writer.Finish();
    ASSERT_EQ(got, reference.Finish());

    BitReader reader(got);
    for (size_t i = 0; i < fields.size(); ++i) {
      auto r = reader.ReadBits(fields[i].width);
      ASSERT_TRUE(r.ok()) << "field " << i << ": " << r.status().ToString();
      ASSERT_EQ(r.value(), fields[i].value & MaskLow(fields[i].width))
          << "field " << i << " width " << fields[i].width;
    }
    EXPECT_FALSE(reader.overrun());
    EXPECT_LT(reader.remaining_bits(), 8u);  // only the padding remains
  }
}

// Interleaved Align calls must pad with zero bits on both sides.
TEST(BitIoPropertyTest, AlignInterleavingMatchesReference) {
  Rng rng(0xa119d);
  for (int round = 0; round < 20; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::vector<Field> fields = RandomFields(rng, 64);

    BitWriter writer;
    ReferencePacker reference;
    std::vector<bool> aligned(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      writer.WriteBits(fields[i].value, fields[i].width);
      reference.Write(fields[i].value, fields[i].width);
      aligned[i] = rng.NextBool(0.25);
      if (aligned[i]) {
        writer.Align();
        reference.Align();
      }
    }
    std::vector<uint8_t> got = writer.Finish();
    ASSERT_EQ(got, reference.Finish());

    BitReader reader(got);
    for (size_t i = 0; i < fields.size(); ++i) {
      auto r = reader.ReadBits(fields[i].width);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_EQ(r.value(), fields[i].value & MaskLow(fields[i].width));
      if (aligned[i]) reader.Align();
    }
    EXPECT_FALSE(reader.overrun());
  }
}

// PeekBits must return the same bits the next ReadBits consumes, must not
// advance the position, and must zero-pad past the end of the stream.
TEST(BitIoPropertyTest, PeekMatchesSubsequentRead) {
  Rng rng(0x9eeb);
  std::vector<Field> fields = RandomFields(rng, 300);
  BitWriter writer;
  for (const Field& f : fields) writer.WriteBits(f.value, f.width);
  std::vector<uint8_t> bytes = writer.Finish();

  BitReader reader(bytes);
  while (reader.remaining_bits() > 0) {
    int count = static_cast<int>(1 + rng.NextBelow(32));
    size_t before = reader.bit_pos();
    uint32_t peeked = reader.PeekBits(count);
    ASSERT_EQ(reader.bit_pos(), before);  // peek must not consume

    size_t avail = reader.remaining_bits();
    if (static_cast<size_t>(count) <= avail) {
      auto read = reader.ReadBits(count);
      ASSERT_TRUE(read.ok());
      ASSERT_EQ(peeked, static_cast<uint32_t>(read.value()));
    } else {
      // Tail: in-range bits left-aligned against count, zeros below.
      auto read = reader.ReadBits(static_cast<int>(avail));
      ASSERT_TRUE(read.ok());
      ASSERT_EQ(peeked, static_cast<uint32_t>(read.value())
                            << (count - static_cast<int>(avail)));
      break;
    }
  }
}

// The packed-block kernels must be byte-identical to per-value calls.
TEST(BitIoPropertyTest, PackedBlockKernelsMatchPerValueCalls) {
  Rng rng(0x910c);
  for (int width = 0; width <= 64; ++width) {
    SCOPED_TRACE("width " + std::to_string(width));
    size_t count = 1 + rng.NextBelow(300);
    std::vector<uint64_t> values(count);
    for (auto& v : values) v = rng.NextU64();

    // Start both streams unaligned to exercise the straddle paths.
    BitWriter bulk;
    bulk.WriteBits(0x5, 3);
    bulk.WritePackedBlock(values, width);
    BitWriter scalar;
    scalar.WriteBits(0x5, 3);
    for (uint64_t v : values) scalar.WriteBits(v, width);
    std::vector<uint8_t> bytes = bulk.Finish();
    ASSERT_EQ(bytes, scalar.Finish());

    BitReader reader(bytes);
    ASSERT_TRUE(reader.ReadBits(3).ok());
    std::vector<uint64_t> decoded(count);
    Status read = reader.ReadPackedBlock(decoded.data(), count, width);
    ASSERT_TRUE(read.ok()) << read.ToString();
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(decoded[i], values[i] & MaskLow(width)) << "index " << i;
    }
  }
}

// Exhaustive scalar-vs-dispatched cross-check over the SIMD seam: every
// width 0..64, every bit alignment 0..63, and tail lengths that leave
// 0..4 values for the vector kernels' cleanup path. The scalar kernel is
// the oracle; whatever tier ActiveKernels() resolved to (including under
// ADAEDGE_FORCE_ISA) must match it bit for bit.
TEST(BitIoPropertyTest, DispatchedPackedBlockMatchesScalarExhaustively) {
  Rng rng(0xd15b);
  const simd::Kernels& active = simd::ActiveKernels();
  const simd::Kernels& scalar = simd::KernelsFor(simd::Isa::kScalar);
  for (int width = 0; width <= 64; ++width) {
    SCOPED_TRACE("width " + std::to_string(width));
    for (int align = 0; align < 64; ++align) {
      // 8..12 values: a full vector batch plus a 0..4 value tail.
      size_t count = 8 + static_cast<size_t>(align) % 5;
      std::vector<uint64_t> values(count);
      for (auto& v : values) v = rng.NextU64();

      // Pack: both kernels run against identically pre-seeded state.
      uint64_t preamble = rng.NextU64() & MaskLow(align ? align : 1);
      std::vector<uint8_t> got_bytes, want_bytes;
      uint64_t got_acc = align ? preamble : 0;
      uint64_t want_acc = got_acc;
      int got_used = align, want_used = align;
      active.pack_bits(&got_bytes, &got_acc, &got_used, values.data(),
                       count, width);
      scalar.pack_bits(&want_bytes, &want_acc, &want_used, values.data(),
                       count, width);
      ASSERT_EQ(got_bytes, want_bytes) << "align " << align;
      ASSERT_EQ(got_acc, want_acc) << "align " << align;
      ASSERT_EQ(got_used, want_used) << "align " << align;

      // Unpack: same stream, same starting bit position.
      if (width == 0) continue;
      BitWriter writer;
      writer.WriteBits(preamble, align);
      writer.WritePackedBlock(values, width);
      std::vector<uint8_t> bytes = writer.Finish();
      std::vector<uint64_t> got(count), want(count);
      active.unpack_bits(bytes.data(), bytes.size(),
                         static_cast<size_t>(align), got.data(), count,
                         width);
      scalar.unpack_bits(bytes.data(), bytes.size(),
                         static_cast<size_t>(align), want.data(), count,
                         width);
      ASSERT_EQ(got, want) << "align " << align;
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(want[i], values[i] & MaskLow(width)) << "index " << i;
      }
    }
  }
}

TEST(BitIoPropertyTest, ReadPackedBlockRejectsShortStreams) {
  BitWriter writer;
  writer.WriteBits(0, 17);  // 17 bits: one 16-bit field fits, two do not
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes.data(), 2);  // view only the first 2 bytes
  uint64_t out[2];
  Status read = reader.ReadPackedBlock(out, 2, 16);
  EXPECT_FALSE(read.ok());
  EXPECT_TRUE(reader.overrun());
}

// WriteUnary emits value one-bits then a zero, in WriteBits-sized chunks;
// the bytes must match the bit-by-bit reference even past 64-bit runs.
TEST(BitIoPropertyTest, UnaryMatchesReferenceAndRoundTrips) {
  const uint32_t kValues[] = {0, 1, 7, 63, 64, 65, 127, 128, 200};
  BitWriter writer;
  ReferencePacker reference;
  for (uint32_t v : kValues) {
    writer.WriteUnary(v);
    for (uint32_t i = 0; i < v; ++i) reference.Write(1, 1);
    reference.Write(0, 1);
  }
  std::vector<uint8_t> bytes = writer.Finish();
  ASSERT_EQ(bytes, reference.Finish());

  BitReader reader(bytes);
  for (uint32_t v : kValues) {
    auto r = reader.ReadUnary();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), v);
  }
}

TEST(BitIoPropertyTest, ReadUnaryEnforcesLimit) {
  BitWriter writer;
  writer.WriteUnary(200);
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes);
  auto r = reader.ReadUnary(/*limit=*/100);
  EXPECT_FALSE(r.ok());
}

// A stream of all ones never terminates: ReadUnary must report the
// overrun instead of running past the end.
TEST(BitIoPropertyTest, ReadUnaryStopsAtStreamEnd) {
  std::vector<uint8_t> ones(4, 0xff);
  BitReader reader(ones);
  auto r = reader.ReadUnary();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(reader.overrun());
}

// ReadBitsUnchecked must agree with ReadBits whenever its precondition
// (count <= remaining_bits) holds, from every bit offset.
TEST(BitIoPropertyTest, UncheckedReadMatchesChecked) {
  Rng rng(0x0c4ec4ed);
  std::vector<Field> fields = RandomFields(rng, 200);
  BitWriter writer;
  for (const Field& f : fields) writer.WriteBits(f.value, f.width);
  std::vector<uint8_t> bytes = writer.Finish();

  BitReader checked(bytes);
  BitReader unchecked(bytes);
  while (checked.remaining_bits() > 0) {
    int count = static_cast<int>(
        1 + rng.NextBelow(std::min<uint64_t>(64, checked.remaining_bits())));
    auto a = checked.ReadBits(count);
    ASSERT_TRUE(a.ok());
    ASSERT_EQ(a.value(), unchecked.ReadBitsUnchecked(count));
    ASSERT_EQ(checked.bit_pos(), unchecked.bit_pos());
  }
}

// Short buffers force the reader's byte-wise tail path: every (offset,
// count) pair inside an 1..10-byte stream must match the reference.
TEST(BitIoPropertyTest, TailPathMatchesReferenceAtEveryOffset) {
  Rng rng(0x7a11);
  for (size_t size = 1; size <= 10; ++size) {
    std::vector<uint8_t> bytes(size);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextU64());
    for (size_t pos = 0; pos < size * 8; ++pos) {
      for (size_t count = 1; count <= size * 8 - pos && count <= 64;
           ++count) {
        // Reference: collect bits one at a time.
        uint64_t want = 0;
        for (size_t i = 0; i < count; ++i) {
          size_t p = pos + i;
          want = (want << 1) | ((bytes[p >> 3] >> (7 - (p & 7))) & 1);
        }
        BitReader reader(bytes);
        reader.Consume(pos);
        auto got = reader.ReadBits(static_cast<int>(count));
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(got.value(), want)
            << "size " << size << " pos " << pos << " count " << count;
      }
    }
  }
}

// Regression for the Consume clamping bug: seeking past the end used to
// silently clamp, making the next reads return in-bounds garbage. Now the
// overrun latches and every checked read reports OutOfRange.
TEST(BitIoPropertyTest, ConsumePastEndLatchesOverrun) {
  std::vector<uint8_t> bytes = {0xab, 0xcd};
  BitReader reader(bytes);
  ASSERT_FALSE(reader.overrun());
  reader.Consume(100);  // only 16 bits exist
  EXPECT_TRUE(reader.overrun());
  EXPECT_EQ(reader.remaining_bits(), 0u);
  EXPECT_EQ(reader.bit_pos(), 16u);

  auto r = reader.ReadBits(1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(reader.PeekBits(8), 0u);  // past-the-end bits read as zero

  uint64_t out;
  EXPECT_FALSE(reader.ReadPackedBlock(&out, 1, 4).ok());
  EXPECT_FALSE(reader.ReadUnary().ok());
  EXPECT_FALSE(reader.ReadBit().ok());
}

// An in-range Consume works as a seek and does not latch anything.
TEST(BitIoPropertyTest, ConsumeInRangeSeeks) {
  std::vector<uint8_t> bytes = {0xab, 0xcd};  // 1010 1011 1100 1101
  BitReader reader(bytes);
  reader.Consume(4);
  EXPECT_FALSE(reader.overrun());
  auto r = reader.ReadBits(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0xbcu);
  reader.Consume(4);  // consumes exactly to the end
  EXPECT_FALSE(reader.overrun());
  EXPECT_EQ(reader.remaining_bits(), 0u);
}

// The speculative peek-then-consume pattern (gorilla/chimp/deflate inner
// loops) near end-of-stream: PeekBits past the end zero-pads WITHOUT
// latching, so a decoder can over-peek and then consume only the bits
// that exist. Once an over-consume DOES latch the overrun, the reader is
// poisoned: PeekBits returns 0 from then on — even for positions that
// were in range — and further Consume calls keep the position pinned, so
// a decoder that ignores one failure cannot resynthesize garbage values
// from a stale window.
TEST(BitIoPropertyTest, PeekAfterLatchedOverrunIsPoisoned) {
  std::vector<uint8_t> bytes = {0xff, 0xff, 0xff};
  BitReader reader(bytes);
  reader.Consume(20);  // 4 valid bits left

  // Over-peek near the end: zero-padded, not an overrun.
  EXPECT_EQ(reader.PeekBits(16), 0xf000u);
  EXPECT_FALSE(reader.overrun());
  reader.Consume(4);  // consume only the real bits; still clean
  EXPECT_FALSE(reader.overrun());
  EXPECT_EQ(reader.remaining_bits(), 0u);

  // Now over-consume: latches, and the poison sticks.
  reader.Consume(1);
  EXPECT_TRUE(reader.overrun());
  EXPECT_EQ(reader.PeekBits(8), 0u);
  EXPECT_EQ(reader.bit_pos(), 24u);
  reader.Consume(7);  // consuming from a poisoned reader stays pinned
  EXPECT_TRUE(reader.overrun());
  EXPECT_EQ(reader.bit_pos(), 24u);
  EXPECT_EQ(reader.remaining_bits(), 0u);
  EXPECT_EQ(reader.PeekBits(1), 0u);
}

// External-buffer mode must append after existing contents and leave the
// complete stream in the caller's vector on Flush.
TEST(BitIoPropertyTest, ExternalBufferModeAppends) {
  std::vector<uint8_t> out = {0xde, 0xad};
  BitWriter writer(&out);
  writer.WriteBits(0x1234, 16);
  writer.WriteBits(1, 1);
  writer.Flush();
  std::vector<uint8_t> expect = {0xde, 0xad, 0x12, 0x34, 0x80};
  EXPECT_EQ(out, expect);
}

}  // namespace
}  // namespace adaedge::util
