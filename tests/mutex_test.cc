// Tests for the annotated mutex wrappers and the runtime lock-rank checker
// (util/mutex.h, util/mutex.cc).
//
// The checker is compiled out in NDEBUG builds unless forced with
// -DADAEDGE_LOCK_RANK_CHECK=ON, so every bookkeeping assertion here is
// gated on the macro; in release builds this suite degenerates to checking
// that the wrappers still lock and that the no-op hooks report zero.

#include "adaedge/util/mutex.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "adaedge/util/thread_annotations.h"

namespace adaedge::util {
namespace {

TEST(MutexTest, LockUnlockAndTryLock) {
  Mutex mu(LockRank::kStore, "test.store");
  mu.Lock();
  EXPECT_EQ(mu.rank(), LockRank::kStore);
  EXPECT_STREQ(mu.name(), "test.store");
  mu.Unlock();

  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, TryLockFailsWhenHeldElsewhere) {
  Mutex mu(LockRank::kStore, "test.store");
  mu.Lock();
  std::thread other([&mu] {
    EXPECT_FALSE(mu.TryLock());
    // A failed TryLock must not perturb this thread's bookkeeping.
    EXPECT_EQ(lock_rank::HeldCount(), 0);
  });
  other.join();
  mu.Unlock();
}

TEST(SharedMutexTest, SharedAndExclusive) {
  SharedMutex mu(LockRank::kFleetRouting, "test.routing");
  {
    ReaderMutexLock lock(&mu);
  }
  {
    WriterMutexLock lock(&mu);
  }
  // Two readers from different threads may overlap.
  mu.LockShared();
  std::thread reader([&mu] {
    ReaderMutexLock lock(&mu);
  });
  reader.join();
  mu.UnlockShared();
}

#if ADAEDGE_LOCK_RANK_CHECK

TEST(LockRankTest, CorrectNestingPasses) {
  Mutex outer(LockRank::kFleetMerge, "test.merge");
  Mutex middle(LockRank::kQueue, "test.queue");
  Mutex inner(LockRank::kBandit, "test.bandit");

  EXPECT_EQ(lock_rank::HeldCount(), 0);
  outer.Lock();
  EXPECT_EQ(lock_rank::HeldCount(), 1);
  middle.Lock();
  inner.Lock();
  EXPECT_EQ(lock_rank::HeldCount(), 3);
  // Release order does not matter for the rank check.
  middle.Unlock();
  inner.Unlock();
  outer.Unlock();
  EXPECT_EQ(lock_rank::HeldCount(), 0);
}

TEST(LockRankTest, UnrankedIsOrderExempt) {
  Mutex ranked(LockRank::kLogging, "test.logging");
  Mutex unranked;  // kUnranked

  // Unranked after the highest rank, and ranked after unranked: both legal.
  ranked.Lock();
  unranked.Lock();
  unranked.Unlock();
  ranked.Unlock();

  unranked.Lock();
  Mutex low(LockRank::kFleetMerge, "test.merge");
  low.Lock();
  low.Unlock();
  unranked.Unlock();
  EXPECT_EQ(lock_rank::HeldCount(), 0);
}

TEST(LockRankTest, RanksArePerThread) {
  // Holding the highest-ranked lock here must not constrain other threads.
  Mutex high(LockRank::kLogging, "test.logging");
  high.Lock();
  std::thread other([] {
    EXPECT_EQ(lock_rank::HeldCount(), 0);
    Mutex low(LockRank::kFleetMerge, "test.merge");
    low.Lock();
    EXPECT_EQ(lock_rank::HeldCount(), 1);
    low.Unlock();
  });
  other.join();
  high.Unlock();
}

TEST(LockRankTest, CondVarWaitRestoresBookkeeping) {
  Mutex mu(LockRank::kQueue, "test.queue");
  CondVar cv;
  mu.Lock();
  EXPECT_EQ(lock_rank::HeldCount(), 1);
  // Timed wait: the rank slot is popped while parked and re-pushed on wake.
  cv.WaitFor(mu, std::chrono::milliseconds(1));
  EXPECT_EQ(lock_rank::HeldCount(), 1);
  mu.Unlock();
  EXPECT_EQ(lock_rank::HeldCount(), 0);
}

TEST(LockRankDeathTest, DetectsInversion) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex store(LockRank::kStore, "test.store");
  Mutex queue(LockRank::kQueue, "test.queue");
  EXPECT_DEATH(
      {
        store.Lock();
        queue.Lock();  // kQueue (40) under kStore (60): inversion.
      },
      "lock-order inversion.*test\\.queue.*test\\.store");
}

TEST(LockRankDeathTest, DetectsEqualRankNesting) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a(LockRank::kNode, "test.node_a");
  Mutex b(LockRank::kNode, "test.node_b");
  EXPECT_DEATH(
      {
        a.Lock();
        b.Lock();  // Same rank: no defined order, rejected.
      },
      "lock-order inversion.*test\\.node_b.*test\\.node_a");
}

// The deliberate double-Lock below is exactly what clang's static analysis
// exists to reject, so this one function opts out of it.
void RecursivelyAcquire(Mutex& mu) ADAEDGE_NO_THREAD_SAFETY_ANALYSIS {
  mu.Lock();
  mu.Lock();
}

TEST(LockRankDeathTest, DetectsRecursiveAcquisition) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu(LockRank::kStore, "test.store");
  EXPECT_DEATH(RecursivelyAcquire(mu), "recursive acquisition.*test\\.store");
}

TEST(LockRankDeathTest, UnrankedStillRecursionChecked) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu;  // kUnranked: order-exempt but not recursion-exempt.
  EXPECT_DEATH(RecursivelyAcquire(mu), "recursive acquisition.*unranked");
}

TEST(LockRankDeathTest, ReleasingUnheldLockDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu(LockRank::kStore, "test.store");
  EXPECT_DEATH(lock_rank::NoteRelease(&mu), "does not hold");
}

#else  // !ADAEDGE_LOCK_RANK_CHECK

TEST(LockRankTest, CompiledOutInRelease) {
  // The hooks are inline no-ops; locking must not touch any bookkeeping.
  Mutex mu(LockRank::kStore, "test.store");
  mu.Lock();
  EXPECT_EQ(lock_rank::HeldCount(), 0);
  mu.Unlock();
}

#endif  // ADAEDGE_LOCK_RANK_CHECK

}  // namespace
}  // namespace adaedge::util
