// Bandit policy tests: convergence, exploration behaviour, nonstationary
// tracking, and the banded (per-ratio) instance set.

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/bandit/banded_bandit.h"
#include "adaedge/bandit/bandit.h"
#include "adaedge/util/rng.h"

namespace adaedge::bandit {
namespace {

// Bernoulli test bench: arm a pays 1 with probability p[a].
struct Bench {
  std::vector<double> p;
  util::Rng rng{12345};

  double Pull(int arm) { return rng.NextBool(p[arm]) ? 1.0 : 0.0; }
  int best() const {
    return static_cast<int>(
        std::max_element(p.begin(), p.end()) - p.begin());
  }
};

// Parameterized over (policy kind, reward gap).
class ConvergenceTest
    : public ::testing::TestWithParam<std::tuple<PolicyKind, double>> {};

TEST_P(ConvergenceTest, FindsBestArm) {
  auto [kind, gap] = GetParam();
  Bench bench{{0.5, 0.5 + gap, 0.5 - gap, 0.2}};
  BanditConfig config;
  config.epsilon = 0.1;
  config.initial_value = 1.0;
  auto policy = MakePolicy(kind, 4, config);
  for (int t = 0; t < 5000; ++t) {
    int arm = policy->SelectArm();
    policy->Update(arm, bench.Pull(arm));
  }
  EXPECT_EQ(policy->BestArm(), bench.best());
  // The best arm must dominate pulls (regret sublinearity proxy).
  uint64_t total = 0;
  for (int a = 0; a < 4; ++a) total += policy->PullCount(a);
  EXPECT_GT(policy->PullCount(bench.best()), total / 2);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndGaps, ConvergenceTest,
    ::testing::Combine(::testing::Values(PolicyKind::kEpsilonGreedy,
                                         PolicyKind::kUcb1,
                                         PolicyKind::kGradient),
                       ::testing::Values(0.3, 0.15)));

TEST(GradientBanditTest, ProbabilitiesFormDistribution) {
  BanditConfig config;
  GradientBandit policy(4, config);
  double total = 0.0;
  for (int a = 0; a < 4; ++a) {
    double p = policy.Probability(a);
    EXPECT_NEAR(p, 0.25, 1e-12);  // uniform before any update
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(GradientBanditTest, PreferenceShiftsTowardRewardedArm) {
  BanditConfig config;
  config.step = 0.2;
  GradientBandit policy(3, config);
  for (int t = 0; t < 500; ++t) {
    int arm = policy.SelectArm();
    policy.Update(arm, arm == 2 ? 1.0 : 0.0);
  }
  EXPECT_GT(policy.Probability(2), 0.8);
  EXPECT_EQ(policy.BestArm(), 2);
}

TEST(EpsilonGreedyTest, ZeroEpsilonNeverExploresAfterWarmup) {
  BanditConfig config;
  config.epsilon = 0.0;
  config.initial_value = 0.0;
  EpsilonGreedy policy(3, config);
  policy.Update(1, 0.9);  // make arm 1 clearly best
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(policy.SelectArm(), 1);
  }
}

TEST(EpsilonGreedyTest, OptimisticInitTriesAllArmsEarly) {
  BanditConfig config;
  config.epsilon = 0.0;  // pure greedy: optimism alone must drive coverage
  config.initial_value = 1.0;
  EpsilonGreedy policy(5, config);
  for (int t = 0; t < 100; ++t) {
    int arm = policy.SelectArm();
    policy.Update(arm, 0.3);  // every pull disappoints
  }
  for (int a = 0; a < 5; ++a) {
    EXPECT_GT(policy.PullCount(a), 0u) << "arm " << a << " never tried";
  }
}

TEST(EpsilonGreedyTest, PerArmInitialValuesBiasOrder)  {
  BanditConfig config;
  config.epsilon = 0.0;
  config.initial_values = {1.0, 0.95, 0.9};
  EpsilonGreedy policy(3, config);
  EXPECT_EQ(policy.SelectArm(), 0);  // deterministic front preference
}

TEST(EpsilonGreedyTest, NonstationaryStepTracksShift) {
  // Arm 0 is best for 2000 steps, then arm 1 becomes best. A constant
  // step must switch; this is the Fig 15 mechanism.
  BanditConfig config;
  config.epsilon = 0.1;
  config.step = 0.5;
  config.initial_value = 1.0;
  EpsilonGreedy policy(2, config);
  util::Rng rng(77);
  auto reward = [&](int arm, int t) {
    double p = (t < 2000) == (arm == 0) ? 0.9 : 0.1;
    return rng.NextBool(p) ? 1.0 : 0.0;
  };
  for (int t = 0; t < 2000; ++t) {
    int arm = policy.SelectArm();
    policy.Update(arm, reward(arm, t));
  }
  EXPECT_EQ(policy.BestArm(), 0);
  for (int t = 2000; t < 4000; ++t) {
    int arm = policy.SelectArm();
    policy.Update(arm, reward(arm, t));
  }
  EXPECT_EQ(policy.BestArm(), 1);
}

TEST(EpsilonGreedyTest, LargerStepSwitchesFaster) {
  // The paper: "a larger step value results in a more swift change of
  // choice with data distribution".
  auto steps_to_switch = [](double step) {
    BanditConfig config;
    config.epsilon = 0.1;
    config.step = step;
    config.seed = 99;
    EpsilonGreedy policy(2, config);
    // Long stable phase favouring arm 0.
    for (int t = 0; t < 3000; ++t) {
      int arm = policy.SelectArm();
      policy.Update(arm, arm == 0 ? 1.0 : 0.0);
    }
    // Shift: arm 1 now pays.
    int t = 0;
    while (policy.BestArm() != 1 && t < 10000) {
      int arm = policy.SelectArm();
      policy.Update(arm, arm == 1 ? 1.0 : 0.0);
      ++t;
    }
    return t;
  };
  EXPECT_LT(steps_to_switch(0.5), steps_to_switch(0.05));
}

TEST(DelayedRewardTest, PendingPullsSpreadOptimisticExploration) {
  // Four concurrent in-flight pulls under pure-greedy optimistic init
  // must cover four DIFFERENT arms: the pending count breaks the
  // optimistic tie instead of sending every worker to the same arm.
  BanditConfig config;
  config.epsilon = 0.0;
  config.initial_value = 1.0;
  EpsilonGreedy policy(4, config);
  std::vector<int> arms;
  std::vector<bool> seen(4, false);
  for (int i = 0; i < 4; ++i) {
    int arm = policy.AcquireArm();
    EXPECT_FALSE(seen[arm]) << "arm " << arm
                            << " acquired twice while others untried";
    seen[arm] = true;
    arms.push_back(arm);
    EXPECT_EQ(policy.PendingCount(arm), 1u);
  }
  EXPECT_EQ(policy.TotalPending(), 4u);
  // Complete out of order: estimates update, pending drains.
  for (int i = 3; i >= 0; --i) {
    policy.CompletePull(arms[i], 0.25 * i);
    EXPECT_EQ(policy.PendingCount(arms[i]), 0u);
    EXPECT_EQ(policy.PullCount(arms[i]), 1u);
  }
  EXPECT_EQ(policy.TotalPending(), 0u);
  EXPECT_EQ(policy.BestArm(), arms[3]);  // highest completed reward
}

TEST(DelayedRewardTest, Ucb1PendingPullsCoverInitialSweep) {
  BanditConfig config;
  Ucb1 policy(4, config);
  std::vector<bool> seen(4, false);
  for (int i = 0; i < 4; ++i) {
    int arm = policy.AcquireArm();
    EXPECT_FALSE(seen[arm]) << "initial sweep repeated arm " << arm;
    seen[arm] = true;
  }
  for (int a = 0; a < 4; ++a) policy.CompletePull(a, 0.5);
  // After completion the policy behaves like the synchronous one.
  int arm = policy.SelectArm();
  EXPECT_GE(arm, 0);
  EXPECT_LT(arm, 4);
}

TEST(DelayedRewardTest, AbandonPullLeavesEstimatesUntouched) {
  BanditConfig config;
  config.epsilon = 0.0;
  config.initial_value = 1.0;
  EpsilonGreedy policy(3, config);
  int arm = policy.AcquireArm();
  EXPECT_EQ(policy.PendingCount(arm), 1u);
  policy.AbandonPull(arm);
  EXPECT_EQ(policy.PendingCount(arm), 0u);
  EXPECT_EQ(policy.PullCount(arm), 0u);
  EXPECT_DOUBLE_EQ(policy.EstimatedValue(arm), 1.0);
}

TEST(DelayedRewardTest, OutOfOrderCompletionMatchesPerArmHistory) {
  // Sample-average estimates depend only on each arm's own reward
  // sequence, so interleaved/out-of-order completions across arms land
  // exactly where synchronous updates would.
  BanditConfig config;
  config.epsilon = 0.0;
  EpsilonGreedy delayed(2, config);
  EpsilonGreedy synchronous(2, config);
  delayed.NotePending(0);
  delayed.NotePending(1);
  delayed.NotePending(0);
  delayed.CompletePull(1, 0.9);  // completes before arm 0's older pulls
  delayed.CompletePull(0, 0.2);
  delayed.CompletePull(0, 0.6);
  synchronous.Update(0, 0.2);
  synchronous.Update(0, 0.6);
  synchronous.Update(1, 0.9);
  for (int a = 0; a < 2; ++a) {
    EXPECT_DOUBLE_EQ(delayed.EstimatedValue(a),
                     synchronous.EstimatedValue(a));
    EXPECT_EQ(delayed.PullCount(a), synchronous.PullCount(a));
  }
}

TEST(DelayedRewardTest, ConvergesWithConcurrentInFlightPulls) {
  // Simulates W workers with delayed feedback: acquire W pulls, then
  // complete them in FIFO order while acquiring replacements. The policy
  // must still find the best arm.
  Bench bench{{0.3, 0.8, 0.5, 0.2}};
  BanditConfig config;
  config.epsilon = 0.05;
  config.initial_value = 1.0;
  EpsilonGreedy policy(4, config);
  constexpr int kWorkers = 8;
  std::vector<int> in_flight;
  for (int i = 0; i < kWorkers; ++i) in_flight.push_back(policy.AcquireArm());
  for (int t = 0; t < 4000; ++t) {
    int arm = in_flight.front();
    in_flight.erase(in_flight.begin());
    policy.CompletePull(arm, bench.Pull(arm));
    in_flight.push_back(policy.AcquireArm());
  }
  for (int arm : in_flight) policy.AbandonPull(arm);
  EXPECT_EQ(policy.BestArm(), bench.best());
}

TEST(Ucb1Test, TriesEveryArmOnceFirst) {
  BanditConfig config;
  Ucb1 policy(4, config);
  std::vector<bool> seen(4, false);
  for (int t = 0; t < 4; ++t) {
    int arm = policy.SelectArm();
    EXPECT_FALSE(seen[arm]) << "repeated before covering all arms";
    seen[arm] = true;
    policy.Update(arm, 0.5);
  }
}

TEST(BandedBanditSetTest, RoutesRatiosToBands) {
  BanditConfig config;
  BandedBanditSet set({1.0, 0.5, 0.25, 0.125}, PolicyKind::kEpsilonGreedy,
                      3, config);
  EXPECT_EQ(set.num_bands(), 4u);
  EXPECT_EQ(set.BandIndex(0.9), 0u);
  EXPECT_EQ(set.BandIndex(0.5), 1u);
  EXPECT_EQ(set.BandIndex(0.3), 1u);
  EXPECT_EQ(set.BandIndex(0.2), 2u);
  EXPECT_EQ(set.BandIndex(0.125), 3u);
  EXPECT_EQ(set.BandIndex(0.01), 3u);
  EXPECT_EQ(set.BandIndex(1.5), 0u);  // clamps above
}

TEST(BandedBanditSetTest, BandsLearnIndependently) {
  // Arm 0 is best in the mild band, arm 1 in the aggressive band — the
  // paper's justification for multiple MAB instances.
  BanditConfig config;
  config.epsilon = 0.1;
  config.initial_value = 1.0;
  BandedBanditSet set({1.0, 0.25}, PolicyKind::kEpsilonGreedy, 2, config);
  util::Rng rng(5);
  for (int t = 0; t < 3000; ++t) {
    double ratio = (t % 2 == 0) ? 0.8 : 0.1;
    BanditPolicy& band = set.ForRatio(ratio);
    int arm = band.SelectArm();
    bool good = (ratio > 0.25) == (arm == 0);
    band.Update(arm, rng.NextBool(good ? 0.9 : 0.1) ? 1.0 : 0.0);
  }
  EXPECT_EQ(set.ForRatio(0.8).BestArm(), 0);
  EXPECT_EQ(set.ForRatio(0.1).BestArm(), 1);
}

TEST(PolicySharingTest, ExportStatsRoundTripsEstimates) {
  BanditConfig config;
  EpsilonGreedy policy(3, config);
  policy.Update(0, 1.0);
  policy.Update(0, 0.0);
  policy.Update(2, 0.25);
  auto stats = policy.ExportStats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_DOUBLE_EQ(stats[0].value, policy.EstimatedValue(0));
  EXPECT_EQ(stats[0].pulls, 2u);
  EXPECT_EQ(stats[1].pulls, 0u);
  EXPECT_DOUBLE_EQ(stats[2].value, 0.25);
  EXPECT_EQ(stats[2].pulls, 1u);
}

TEST(PolicySharingTest, MergeEstimatesBlendsValuesWithoutPullCredit) {
  BanditConfig config;
  config.initial_value = 0.0;
  EpsilonGreedy local(2, config);
  local.Update(0, 0.2);  // local estimate 0.2, 1 pull

  std::vector<ArmStats> peer = {{0.8, 10}, {0.9, 10}};
  local.MergeEstimates(peer, 0.5);

  // Arm 0: blended halfway toward the peer; pull count untouched.
  EXPECT_DOUBLE_EQ(local.EstimatedValue(0), 0.5);
  EXPECT_EQ(local.PullCount(0), 1u);
  // Arm 1: blended even though local never pulled it — but still no
  // synthetic pull credit.
  EXPECT_DOUBLE_EQ(local.EstimatedValue(1), 0.45);
  EXPECT_EQ(local.PullCount(1), 0u);
}

TEST(PolicySharingTest, MergeEstimatesSkipsUnpulledPeerArmsAndBadWeights) {
  BanditConfig config;
  config.initial_value = 1.0;
  EpsilonGreedy local(2, config);
  std::vector<ArmStats> peer = {{0.0, 0}, {0.5, 4}};
  local.MergeEstimates(peer, 0.0);  // no-op weight
  EXPECT_DOUBLE_EQ(local.EstimatedValue(1), 1.0);
  local.MergeEstimates(peer, 1.0);
  EXPECT_DOUBLE_EQ(local.EstimatedValue(0), 1.0);  // peer never pulled it
  EXPECT_DOUBLE_EQ(local.EstimatedValue(1), 0.5);
}

TEST(PolicySharingTest, WarmStartCapsSyntheticPullsAndSkipsTriedArms) {
  BanditConfig config;
  config.initial_value = 1.0;
  EpsilonGreedy policy(3, config);
  policy.Update(1, 0.9);  // locally tried: warm-start must not clobber

  std::vector<ArmStats> peer = {{0.3, 1000}, {0.1, 1000}, {0.0, 0}};
  policy.WarmStart(peer, 8);

  EXPECT_DOUBLE_EQ(policy.EstimatedValue(0), 0.3);
  EXPECT_EQ(policy.PullCount(0), 8u);  // capped, not 1000
  EXPECT_DOUBLE_EQ(policy.EstimatedValue(1), 0.9);
  EXPECT_EQ(policy.PullCount(1), 1u);
  // Arm 2: peer had no evidence either — stays optimistic-untried.
  EXPECT_DOUBLE_EQ(policy.EstimatedValue(2), 1.0);
  EXPECT_EQ(policy.PullCount(2), 0u);
}

TEST(PolicySharingTest, Ucb1AdoptedPullsFeedConfidenceTotal) {
  BanditConfig config;
  Ucb1 policy(2, config);
  std::vector<ArmStats> peer = {{0.7, 50}, {0.6, 50}};
  policy.WarmStart(peer, 16);
  // Warm-started arms count as tried: UCB's cold-start "play every arm
  // once" phase must not re-trigger, and the shared t must include the
  // adopted pulls (a zero t with nonzero counts would divide by zero /
  // skew the confidence bound).
  EXPECT_EQ(policy.PullCount(0), 16u);
  EXPECT_EQ(policy.PullCount(1), 16u);
  for (int t = 0; t < 10; ++t) {
    int arm = policy.SelectArm();
    ASSERT_GE(arm, 0);
    ASSERT_LT(arm, 2);
    policy.Update(arm, 0.5);
  }
}

TEST(PolicySharingTest, GradientWarmStartBiasesPreferences) {
  BanditConfig config;
  GradientBandit policy(2, config);
  // Preferences exported as "value": adopting peer preferences should
  // tilt the softmax toward the peer's favourite.
  std::vector<ArmStats> peer = {{2.0, 30}, {-2.0, 30}};
  policy.WarmStart(peer, 8);
  auto stats = policy.ExportStats();
  EXPECT_GT(stats[0].value, stats[1].value);
  int hits = 0;
  for (int t = 0; t < 200; ++t) {
    if (policy.SelectArm() == 0) ++hits;
  }
  EXPECT_GT(hits, 120);  // softmax(2 vs -2) ~ 0.98
}

TEST(PolicySharingTest, BandedSetMergesBandWise) {
  BanditConfig config;
  config.initial_value = 0.0;
  BandedBanditSet a({1.0, 0.25}, PolicyKind::kEpsilonGreedy, 2, config);
  BandedBanditSet b({1.0, 0.25}, PolicyKind::kEpsilonGreedy, 2, config);
  a.ForRatio(0.8).Update(0, 1.0);   // band 0 knowledge
  a.ForRatio(0.1).Update(1, 1.0);   // band 1 knowledge
  b.MergeEstimates(a.ExportStats(), 1.0);
  EXPECT_DOUBLE_EQ(b.ForRatio(0.8).EstimatedValue(0), 1.0);
  EXPECT_DOUBLE_EQ(b.ForRatio(0.1).EstimatedValue(1), 1.0);
  EXPECT_EQ(b.ForRatio(0.8).PullCount(0), 0u);

  BandedBanditSet c({1.0, 0.25}, PolicyKind::kEpsilonGreedy, 2, config);
  c.WarmStart(a.ExportStats(), 4);
  EXPECT_DOUBLE_EQ(c.ForRatio(0.1).EstimatedValue(1), 1.0);
  EXPECT_EQ(c.ForRatio(0.1).PullCount(1), 1u);  // min(1 pull, cap 4)
}

TEST(PolicySharingTest, DiscountDecaysTowardValueAndScalesCounts) {
  BanditConfig config;
  config.initial_value = 1.0;
  EpsilonGreedy policy(2, config);
  policy.Update(0, 0.3);
  policy.Update(0, 0.5);  // arm 0: value 0.4 (sample average), 2 pulls
  policy.Discount(0.5, 1.0);
  EXPECT_DOUBLE_EQ(policy.EstimatedValue(0), 1.0 + 0.5 * (0.4 - 1.0));
  EXPECT_EQ(policy.PullCount(0), 1u);  // 2 * 0.5
  // Untried arm: already at the initial value, stays there, 0 pulls.
  EXPECT_DOUBLE_EQ(policy.EstimatedValue(1), 1.0);
  EXPECT_EQ(policy.PullCount(1), 0u);
}

TEST(PolicySharingTest, DiscountZeroIsAFullReset) {
  BanditConfig config;
  EpsilonGreedy policy(2, config);
  policy.Update(0, 0.9);
  policy.Update(1, 0.1);
  policy.Discount(0.0, 0.5);
  EXPECT_DOUBLE_EQ(policy.EstimatedValue(0), 0.5);
  EXPECT_DOUBLE_EQ(policy.EstimatedValue(1), 0.5);
  EXPECT_EQ(policy.PullCount(0), 0u);
  EXPECT_EQ(policy.PullCount(1), 0u);
  // Zeroed pulls make every arm eligible for a following WarmStart.
  policy.WarmStart({{0.8, 10}, {0.7, 10}}, 4);
  EXPECT_DOUBLE_EQ(policy.EstimatedValue(0), 0.8);
  EXPECT_EQ(policy.PullCount(0), 4u);
}

TEST(PolicySharingTest, DiscountClampsFractionAndKeepsPending) {
  BanditConfig config;
  EpsilonGreedy policy(1, config);
  policy.Update(0, 0.6);
  policy.NotePending(0);
  policy.Discount(2.0, 0.0);  // clamped to 1.0: a no-op on estimates
  EXPECT_DOUBLE_EQ(policy.EstimatedValue(0), 0.6);
  EXPECT_EQ(policy.PullCount(0), 1u);
  EXPECT_EQ(policy.PendingCount(0), 1u);  // in-flight pulls untouched
  policy.Discount(-1.0, 0.25);  // clamped to 0.0: full reset
  EXPECT_DOUBLE_EQ(policy.EstimatedValue(0), 0.25);
  EXPECT_EQ(policy.PendingCount(0), 1u);
  policy.CompletePull(0, 1.0);  // the pending pull still completes
  EXPECT_EQ(policy.PullCount(0), 1u);
}

TEST(PolicySharingTest, DiscountKeepsUcb1ConfidenceTotalsConsistent) {
  BanditConfig config;
  Ucb1 policy(2, config);
  for (int i = 0; i < 8; ++i) policy.Update(i % 2, 0.5);
  policy.Discount(0.5, 1.0);
  EXPECT_EQ(policy.PullCount(0), 2u);
  EXPECT_EQ(policy.PullCount(1), 2u);
  // The scaled counts must feed a coherent confidence total: selection
  // still works and explores both arms.
  EXPECT_GE(policy.SelectArm(), 0);
  policy.Update(0, 0.9);
  EXPECT_EQ(policy.PullCount(0), 3u);
}

TEST(BandedBanditSetTest, DefaultEdgesDescendFromOne) {
  auto edges = BandedBanditSet::DefaultEdges();
  ASSERT_FALSE(edges.empty());
  EXPECT_DOUBLE_EQ(edges.front(), 1.0);
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i], edges[i - 1]);
  }
}

}  // namespace
}  // namespace adaedge::bandit
