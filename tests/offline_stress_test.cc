// Multithreaded stress tests for the offline engine: concurrent Ingest
// against the background recoding worker pool (recode_threads >= 2), the
// copy-free claim/commit path, and the backpressure semantics. Run under
// ThreadSanitizer in CI (ADAEDGE_SANITIZE=thread).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/compress/registry.h"
#include "adaedge/core/offline_node.h"
#include "adaedge/data/generators.h"
#include "adaedge/util/stopwatch.h"

namespace adaedge::core {
namespace {

constexpr size_t kSegmentLength = 256;

std::vector<std::vector<double>> MakeCbfSegments(size_t count,
                                                 uint64_t seed) {
  data::CbfStream stream(seed);
  std::vector<std::vector<double>> segments(count);
  for (auto& segment : segments) {
    segment.resize(kSegmentLength);
    stream.Fill(segment);
  }
  return segments;
}

TEST(OfflineStressTest, ConcurrentIngestKeepsBudgetInvariants) {
  OfflineConfig config;
  config.storage_budget_bytes = 32 << 10;  // ~2.5x the compressed inflow
  config.recode_threads = 2;
  config.backpressure_timeout_seconds = 30.0;
  config.bandit.seed = 11;
  OfflineNode node(config, TargetSpec::AggAccuracy(query::AggKind::kSum));

  constexpr size_t kThreads = 3;
  constexpr size_t kPerThread = 60;  // ~1.4 MB raw: heavy overcommit
  std::atomic<bool> done{false};

  // Budget watchdog: the hard capacity must hold at every instant, not
  // just at quiescence.
  std::thread watchdog([&] {
    while (!done.load()) {
      EXPECT_LE(node.store().budget()->used(), config.storage_budget_bytes);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> producers;
  for (size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      auto segments = MakeCbfSegments(kPerThread, 100 + t);
      for (size_t i = 0; i < segments.size(); ++i) {
        uint64_t id = t * kPerThread + i;
        EXPECT_TRUE(
            node.Ingest(id, static_cast<double>(id) * 0.001, segments[i])
                .ok())
            << "segment " << id;
      }
    });
  }
  for (auto& producer : producers) producer.join();
  ASSERT_TRUE(node.WaitForRecodingIdle().ok());
  done.store(true);
  watchdog.join();

  // Invariants at quiescence: nothing lost, accounting exact, every
  // payload still decodes.
  EXPECT_EQ(node.store().count(), kThreads * kPerThread);
  EXPECT_LE(node.store().budget()->used(), config.storage_budget_bytes);
  EXPECT_EQ(node.store().budget()->used(), node.store().total_bytes());
  EXPECT_GT(node.recode_ops(), 0u);
  for (uint64_t id : node.store().AllIds()) {
    auto segment = node.store().Peek(id);
    ASSERT_TRUE(segment.ok());
    auto values = segment.value().Materialize();
    ASSERT_TRUE(values.ok()) << "segment " << id;
    EXPECT_EQ(values.value().size(), kSegmentLength);
  }
}

TEST(OfflineStressTest, LruShieldsFreshSegmentsFromBackgroundRecoding) {
  OfflineConfig config;
  config.storage_budget_bytes = 96 << 10;
  config.recode_threads = 2;
  config.bandit.seed = 13;
  OfflineNode node(config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  auto segments = MakeCbfSegments(120, 17);
  for (size_t i = 0; i < segments.size(); ++i) {
    ASSERT_TRUE(node.Ingest(i, i * 0.005, segments[i]).ok());
    // Bound each recoding wave, then keep touching segment 0: LRU must
    // shield it — the wave claims front-most victims, and segment 0 is
    // always behind the victims requeued by the previous wave.
    ASSERT_TRUE(node.WaitForRecodingIdle().ok());
    (void)node.store().Get(0);
  }
  ASSERT_TRUE(node.WaitForRecodingIdle().ok());
  auto seg0 = node.store().Peek(0);
  ASSERT_TRUE(seg0.ok());
  EXPECT_NE(seg0.value().meta().state, SegmentState::kLossy);
}

/// Lossy codec that parks every Compress call behind a test-controlled
/// gate (with a safety timeout so a regression fails instead of hanging),
/// then delegates to the registry RRD-sample codec so the payload stays
/// decodable via the segment's codec id. Proves recoding runs OUTSIDE
/// the store and bandit locks: two workers can only be parked inside
/// Compress simultaneously if neither holds them, and the store stays
/// readable while both are parked.
class GatedLossyCodec final : public compress::Codec {
 public:
  compress::CodecId id() const override {
    return compress::CodecId::kRrdSample;
  }
  compress::CodecKind kind() const override {
    return compress::CodecKind::kLossy;
  }

  util::Result<std::vector<uint8_t>> Compress(
      std::span<const double> values,
      const compress::CodecParams& params) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++inside_;
      peak_ = std::max(peak_, inside_);
      cv_.notify_all();
      cv_.wait_for(lock, std::chrono::seconds(5),
                   [&] { return released_; });
      --inside_;
    }
    return compress::GetCodec(compress::CodecId::kRrdSample)
        ->Compress(values, params);
  }

  util::Result<std::vector<double>> Decompress(
      std::span<const uint8_t> payload) const override {
    return compress::GetCodec(compress::CodecId::kRrdSample)
        ->Decompress(payload);
  }

  bool SupportsRatio(double ratio, size_t value_count) const override {
    return compress::GetCodec(compress::CodecId::kRrdSample)
        ->SupportsRatio(ratio, value_count);
  }

  /// Blocks until `n` threads are parked inside Compress simultaneously.
  bool WaitForParked(int n, std::chrono::seconds timeout) const {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return inside_ >= n; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

  int peak() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable bool released_ = false;
  mutable int inside_ = 0;
  mutable int peak_ = 0;
};

TEST(OfflineStressTest, RecodingRunsOutsideTheStoreLock) {
  auto codec = std::make_shared<GatedLossyCodec>();
  compress::CodecArm lossy;
  lossy.name = "gated";
  lossy.codec = codec;
  compress::CodecArm lossless;
  lossless.name = "raw";
  lossless.codec = compress::GetCodec(compress::CodecId::kRaw);

  OfflineConfig config;
  config.storage_budget_bytes = 64 << 10;
  config.recode_threshold = 0.5;
  config.recode_threads = 2;
  config.lossless_arms = {lossless};
  config.lossy_arms = {lossy};
  // Force the full re-encode path so the instrumented Compress runs.
  config.use_virtual_decompression = false;
  config.backpressure_timeout_seconds = 30.0;
  OfflineNode node(config, TargetSpec::AggAccuracy(query::AggKind::kSum));

  std::thread producer([&] {
    auto segments = MakeCbfSegments(60, 19);
    for (size_t i = 0; i < segments.size(); ++i) {
      EXPECT_TRUE(node.Ingest(i, i * 0.005, segments[i]).ok())
          << "segment " << i;
    }
  });

  // With the gate closed, both workers end up parked inside Compress at
  // the same time — impossible if a recode held the store (or bandit)
  // mutex across the codec call.
  EXPECT_TRUE(codec->WaitForParked(2, std::chrono::seconds(10)));

  // And while both recodes are mid-codec, the store stays readable — a
  // lock-across-recode design would block this Peek behind the gate.
  util::Stopwatch watch;
  EXPECT_TRUE(node.store().Peek(0).ok());
  EXPECT_LT(watch.ElapsedSeconds(), 4.0);

  codec->Release();
  producer.join();
  ASSERT_TRUE(node.WaitForRecodingIdle().ok());
  EXPECT_GE(codec->peak(), 2);
}

/// Lossy codec that cannot hit any ratio: every stored segment is at its
/// compression floor, so recoding can never free space.
class StoneCodec final : public compress::Codec {
 public:
  compress::CodecId id() const override {
    return compress::CodecId::kRrdSample;
  }
  compress::CodecKind kind() const override {
    return compress::CodecKind::kLossy;
  }
  util::Result<std::vector<uint8_t>> Compress(
      std::span<const double>, const compress::CodecParams&) const override {
    return util::Status::Unimplemented("stone codec never compresses");
  }
  util::Result<std::vector<double>> Decompress(
      std::span<const uint8_t>) const override {
    return util::Status::Unimplemented("stone codec never decompresses");
  }
  bool SupportsRatio(double, size_t) const override { return false; }
};

TEST(OfflineStressTest, RejectModeSurfacesExhaustionWithoutBlocking) {
  compress::CodecArm lossless;
  lossless.name = "raw";
  lossless.codec = compress::GetCodec(compress::CodecId::kRaw);
  compress::CodecArm stone;
  stone.name = "stone";
  stone.codec = std::make_shared<StoneCodec>();

  OfflineConfig config;
  config.storage_budget_bytes = 32 << 10;
  config.recode_threads = 2;
  config.lossless_arms = {lossless};
  config.lossy_arms = {stone};
  config.block_on_full = false;  // reject, don't wait for the pool
  OfflineNode node(config, TargetSpec::AggAccuracy(query::AggKind::kSum));

  auto segments = MakeCbfSegments(40, 23);
  Status status = Status::Ok();
  size_t ingested = 0;
  double failing_call_seconds = 0.0;
  for (size_t i = 0; i < segments.size(); ++i) {
    util::Stopwatch watch;
    status = node.Ingest(i, i * 0.005, segments[i]);
    failing_call_seconds = watch.ElapsedSeconds();
    if (!status.ok()) break;
    ++ingested;
  }
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_GT(ingested, 5u);
  EXPECT_LT(ingested, segments.size());
  // The rejecting Ingest must return immediately, not ride out the
  // backpressure timeout.
  EXPECT_LT(failing_call_seconds, 2.0);
  EXPECT_LE(node.store().budget()->used(), config.storage_budget_bytes);
}

TEST(OfflineStressTest, SerialEngineStaysSeedReproducible) {
  // recode_threads == 1 is the determinism contract every figure bench
  // rests on: same seed, same inputs => byte-identical stored payloads.
  auto run = [] {
    OfflineConfig config;
    config.storage_budget_bytes = 64 << 10;
    config.bandit.seed = 29;
    OfflineNode node(config,
                     TargetSpec::AggAccuracy(query::AggKind::kSum));
    auto segments = MakeCbfSegments(80, 31);
    for (size_t i = 0; i < segments.size(); ++i) {
      EXPECT_TRUE(node.Ingest(i, i * 0.005, segments[i]).ok());
    }
    std::vector<std::vector<uint8_t>> payloads;
    for (uint64_t id : node.store().AllIds()) {
      payloads.push_back(node.store().Peek(id).value().payload());
    }
    return payloads;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace adaedge::core
