// Store-level range aggregation: correctness against a flat reference
// array across segment boundaries, in-situ usage accounting, and edge
// handling.

#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/core/range_query.h"
#include "adaedge/util/rng.h"
#include "testing_util.h"

namespace adaedge::core {
namespace {

using ::adaedge::testing::QuantizeDecimals;
using ::adaedge::testing::SineSignal;

constexpr size_t kSegmentLength = 256;
constexpr size_t kSegments = 10;

struct Fixture {
  sim::StorageBudget budget{1 << 22, 0.8};
  SegmentStore store{&budget, MakeLruPolicy()};
  std::vector<double> flat;  // reconstruction-level ground truth
};

// Populates a store of mixed-codec segments and the flat array of their
// reconstructions (the semantics AggregateRange must match).
// (Fixture holds mutexes, so it is filled in place rather than returned.)
void FillFixture(Fixture& f) {
  compress::CodecId codecs[] = {
      compress::CodecId::kRaw, compress::CodecId::kPaa,
      compress::CodecId::kPla, compress::CodecId::kSprintz,
      compress::CodecId::kRrdSample};
  for (uint64_t id = 0; id < kSegments; ++id) {
    std::vector<double> values =
        QuantizeDecimals(SineSignal(kSegmentLength, 20.0 + id, 3.0), 4);
    Segment segment = Segment::FromValues(id, id * 1.0, values);
    compress::CodecId codec = codecs[id % 5];
    if (codec != compress::CodecId::kRaw) {
      compress::CodecParams params;
      params.precision = 4;
      params.target_ratio = 0.4;
      EXPECT_TRUE(segment.Reencode(codec, params, values).ok());
    }
    auto reconstruction = segment.Materialize();
    EXPECT_TRUE(reconstruction.ok());
    f.flat.insert(f.flat.end(), reconstruction.value().begin(),
                  reconstruction.value().end());
    EXPECT_TRUE(f.store.Put(std::move(segment)).ok());
  }
}

double Reference(const Fixture& f, query::AggKind kind, uint64_t from,
                 uint64_t to) {
  std::span<const double> slice(f.flat.data() + from, to - from);
  return query::Aggregate(kind, slice);
}

TEST(RangeQueryTest, MatchesFlatReferenceOnRandomRanges) {
  Fixture f;
  FillFixture(f);
  util::Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    uint64_t a = rng.NextBelow(f.flat.size());
    uint64_t b = rng.NextBelow(f.flat.size());
    if (a == b) continue;
    uint64_t from = std::min(a, b);
    uint64_t to = std::max(a, b);
    for (query::AggKind kind :
         {query::AggKind::kSum, query::AggKind::kAvg, query::AggKind::kMin,
          query::AggKind::kMax}) {
      auto result = AggregateRange(f.store, kind, from, to);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result.value().count, to - from);
      double expected = Reference(f, kind, from, to);
      double scale = std::max(1.0, std::abs(expected));
      EXPECT_NEAR(result.value().value, expected, 1e-6 * scale)
          << query::AggKindName(kind) << " [" << from << "," << to << ")";
    }
  }
}

TEST(RangeQueryTest, FullyCoveredSegmentsAnswerInSitu) {
  Fixture f;
  FillFixture(f);
  // The whole store: every segment is fully covered; the PAA/PLA/RRD
  // segments (3 codecs x 2 instances) answer in-situ for Sum.
  auto result =
      AggregateRange(f.store, query::AggKind::kSum, 0, f.flat.size());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().in_situ_segments, 6u);
  EXPECT_EQ(result.value().decompressed_segments, 4u);  // raw + sprintz
}

TEST(RangeQueryTest, EdgeSegmentsAreDecompressed) {
  Fixture f;
  FillFixture(f);
  // Range cutting into the middle of segments 1 (paa) and 3 (sprintz):
  // both edges decompress; segment 2 (pla) stays in-situ.
  uint64_t from = kSegmentLength + kSegmentLength / 2;
  uint64_t to = 3 * kSegmentLength + kSegmentLength / 2;
  auto result = AggregateRange(f.store, query::AggKind::kSum, from, to);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().in_situ_segments, 1u);
  EXPECT_EQ(result.value().decompressed_segments, 2u);
  EXPECT_NEAR(result.value().value,
              Reference(f, query::AggKind::kSum, from, to), 1e-6);
}

TEST(RangeQueryTest, RangeBeyondStoreClampsOrFails) {
  Fixture f;
  FillFixture(f);
  uint64_t n = f.flat.size();
  // Overhanging range clamps to stored values.
  auto clamped =
      AggregateRange(f.store, query::AggKind::kSum, n - 10, n + 1000);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped.value().count, 10u);
  // Fully out of range fails cleanly.
  auto outside =
      AggregateRange(f.store, query::AggKind::kMax, n + 1, n + 5);
  EXPECT_FALSE(outside.ok());
  EXPECT_EQ(outside.status().code(), util::StatusCode::kNotFound);
  // Degenerate range rejected.
  EXPECT_EQ(AggregateRange(f.store, query::AggKind::kSum, 5, 5)
                .status()
                .code(),
            util::StatusCode::kInvalidArgument);
}

TEST(RangeQueryTest, DoesNotPerturbLruOrder) {
  Fixture f;
  FillFixture(f);
  uint64_t victim_before = f.store.NextVictim().value();
  (void)AggregateRange(f.store, query::AggKind::kSum, 0, f.flat.size());
  EXPECT_EQ(f.store.NextVictim().value(), victim_before);
}

}  // namespace
}  // namespace adaedge::core
