// Segment persistence tests: file roundtrips, CRC protection, store
// reload, cross-codec coverage.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/core/store_io.h"
#include "testing_util.h"

namespace adaedge::core {
namespace {

using ::adaedge::testing::QuantizeDecimals;
using ::adaedge::testing::SineSignal;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<Segment> MakeMixedSegments() {
  std::vector<Segment> segments;
  std::vector<double> values = QuantizeDecimals(SineSignal(512, 48), 4);
  // One raw, one lossless, one lossy segment.
  segments.push_back(Segment::FromValues(1, 0.5, values));
  Segment lossless = Segment::FromValues(2, 1.0, values);
  compress::CodecParams params;
  params.precision = 4;
  EXPECT_TRUE(
      lossless.Reencode(compress::CodecId::kSprintz, params, values).ok());
  segments.push_back(std::move(lossless));
  Segment lossy = Segment::FromValues(3, 1.5, values);
  params.target_ratio = 0.25;
  EXPECT_TRUE(lossy.Reencode(compress::CodecId::kPaa, params, values).ok());
  lossy.mutable_meta().access_count = 7;
  segments.push_back(std::move(lossy));
  return segments;
}

TEST(StoreIoTest, FileRoundtripPreservesEverything) {
  std::string path = TempPath("roundtrip.seg");
  std::vector<Segment> segments = MakeMixedSegments();
  ASSERT_TRUE(SaveSegmentsToFile(segments, path).ok());
  auto loaded = LoadSegmentsFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), segments.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    const Segment& a = segments[i];
    const Segment& b = loaded.value()[i];
    EXPECT_EQ(a.meta().id, b.meta().id);
    EXPECT_EQ(a.meta().state, b.meta().state);
    EXPECT_EQ(a.meta().codec, b.meta().codec);
    EXPECT_EQ(a.meta().crc, b.meta().crc);
    EXPECT_EQ(a.meta().access_count, b.meta().access_count);
    EXPECT_EQ(a.payload(), b.payload());
    // And the data still materializes identically.
    auto va = a.Materialize();
    auto vb = b.Materialize();
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE(vb.ok());
    EXPECT_EQ(va.value(), vb.value());
  }
  std::remove(path.c_str());
}

TEST(StoreIoTest, DetectsOnDiskCorruption) {
  std::string path = TempPath("corrupt.seg");
  ASSERT_TRUE(SaveSegmentsToFile(MakeMixedSegments(), path).ok());
  // Flip one byte in the middle of the file (payload region).
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);
  auto loaded = LoadSegmentsFromFile(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(StoreIoTest, RejectsWrongMagic) {
  std::string path = TempPath("magic.seg");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a segment file", f);
  std::fclose(f);
  auto loaded = LoadSegmentsFromFile(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(StoreIoTest, MissingFileIsNotFound) {
  auto loaded = LoadSegmentsFromFile(TempPath("does_not_exist.seg"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST(StoreIoTest, StoreDumpAndReload) {
  std::string path = TempPath("store.seg");
  sim::StorageBudget budget(1 << 20, 0.8);
  SegmentStore store(&budget, MakeLruPolicy());
  for (Segment& segment : MakeMixedSegments()) {
    ASSERT_TRUE(store.Put(std::move(segment)).ok());
  }
  ASSERT_TRUE(SaveStoreToFile(store, path).ok());

  sim::StorageBudget budget2(1 << 20, 0.8);
  SegmentStore restored(&budget2, MakeLruPolicy());
  ASSERT_TRUE(LoadFileIntoStore(path, restored).ok());
  EXPECT_EQ(restored.count(), store.count());
  EXPECT_EQ(restored.total_bytes(), store.total_bytes());
  EXPECT_EQ(budget2.used(), budget.used());
  for (uint64_t id : store.AllIds()) {
    auto a = store.Peek(id);
    auto b = restored.Peek(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().payload(), b.value().payload());
  }
  std::remove(path.c_str());
}

TEST(StoreIoTest, LoadIntoTooSmallStoreFails) {
  std::string path = TempPath("overflow.seg");
  ASSERT_TRUE(SaveSegmentsToFile(MakeMixedSegments(), path).ok());
  sim::StorageBudget tiny(256, 0.8);
  SegmentStore store(&tiny, MakeLruPolicy());
  auto status = LoadFileIntoStore(path, store);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adaedge::core
