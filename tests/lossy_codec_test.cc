// Lossy codec tests: target-ratio adherence, approximation quality,
// recoding ("virtual decompression") equivalence, and floor behaviour.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/compress/buff.h"
#include "adaedge/compress/fft_codec.h"
#include "adaedge/compress/lttb.h"
#include "adaedge/compress/paa.h"
#include "adaedge/compress/pla.h"
#include "adaedge/compress/registry.h"
#include "adaedge/compress/rrd_sample.h"
#include "adaedge/util/stats.h"
#include "testing_util.h"

namespace adaedge::compress {
namespace {

using ::adaedge::testing::QuantizeDecimals;
using ::adaedge::testing::RandomWalk;
using ::adaedge::testing::SineSignal;

struct LossyCase {
  std::string codec_name;
  double target_ratio;
};

std::string LossyCaseName(const ::testing::TestParamInfo<LossyCase>& info) {
  int pct = static_cast<int>(std::lround(info.param.target_ratio * 100));
  return info.param.codec_name + "_r" + std::to_string(pct);
}

class LossyRatioTest : public ::testing::TestWithParam<LossyCase> {};

TEST_P(LossyRatioTest, MeetsTargetRatioAndLength) {
  const LossyCase& c = GetParam();
  auto arms = ExtendedLossyArms(/*precision=*/4, c.target_ratio);
  auto arm = FindArm(arms, c.codec_name);
  ASSERT_TRUE(arm.has_value());
  std::vector<double> input = QuantizeDecimals(SineSignal(2000, 100), 4);

  if (!arm->codec->SupportsRatio(c.target_ratio, input.size())) {
    // The codec must then refuse rather than overshoot.
    auto out = arm->codec->Compress(input, arm->params);
    EXPECT_FALSE(out.ok()) << c.codec_name;
    return;
  }
  auto out = arm->codec->Compress(input, arm->params);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_LE(CompressionRatio(out.value().size(), input.size()),
            c.target_ratio * 1.02 + 0.003)
      << c.codec_name;
  auto back = arm->codec->Decompress(out.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), input.size());
}

std::vector<LossyCase> AllLossyCases() {
  std::vector<LossyCase> cases;
  for (const char* codec :
       {"bufflossy", "paa", "pla", "fft", "rrd", "lttb", "kernel"}) {
    for (double r : {0.9, 0.5, 0.25, 0.125, 0.06, 0.03}) {
      cases.push_back(LossyCase{codec, r});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllLossy, LossyRatioTest,
                         ::testing::ValuesIn(AllLossyCases()), LossyCaseName);

// Tighter target => payload never grows (monotonicity property).
class LossyMonotonicityTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(LossyMonotonicityTest, TighterRatioNeverLarger) {
  auto arms = ExtendedLossyArms(4);
  auto arm = FindArm(arms, GetParam());
  ASSERT_TRUE(arm.has_value());
  std::vector<double> input = QuantizeDecimals(RandomWalk(3000, 21), 4);
  size_t prev_size = SIZE_MAX;
  for (double r : {0.8, 0.6, 0.4, 0.3, 0.2, 0.15, 0.1, 0.05}) {
    CodecParams p = arm->params;
    p.target_ratio = r;
    if (!arm->codec->SupportsRatio(r, input.size())) break;
    auto out = arm->codec->Compress(input, p);
    if (!out.ok()) break;  // at its floor
    EXPECT_LE(out.value().size(), prev_size) << GetParam() << " ratio " << r;
    prev_size = out.value().size();
  }
}

INSTANTIATE_TEST_SUITE_P(AllLossy, LossyMonotonicityTest,
                         ::testing::Values("bufflossy", "paa", "pla", "fft",
                                           "rrd", "lttb", "kernel"));

TEST(KernelRegressionTest, SmoothSignalReconstructsWell) {
  std::vector<double> input = SineSignal(1024, 128.0, 3.0);
  auto arm = *FindArm(ExtendedLossyArms(4, 0.2), "kernel");
  auto out = arm.codec->Compress(input, arm.params);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto back = arm.codec->Decompress(out.value());
  ASSERT_TRUE(back.ok());
  EXPECT_LT(util::RootMeanSquareError(input, back.value()), 0.25);
}

// Recode must hit the tighter budget and match a fresh compression of the
// decompressed data in approximation quality (within tolerance).
class RecodeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RecodeTest, RecodeShrinksAndStaysDecodable) {
  auto arms = ExtendedLossyArms(4, 0.5);
  auto arm = FindArm(arms, GetParam());
  ASSERT_TRUE(arm.has_value());
  ASSERT_TRUE(arm->codec->SupportsRecode());
  std::vector<double> input = QuantizeDecimals(SineSignal(2048, 64), 4);
  auto first = arm->codec->Compress(input, arm->params);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  auto recoded = arm->codec->Recode(first.value(), 0.25);
  ASSERT_TRUE(recoded.ok()) << recoded.status().ToString();
  EXPECT_LT(recoded.value().size(), first.value().size());
  EXPECT_LE(CompressionRatio(recoded.value().size(), input.size()), 0.26);

  auto back = arm->codec->Decompress(recoded.value());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), input.size());
  // The recoded approximation must stay in the same quality regime as
  // compressing the original directly at the tighter ratio.
  CodecParams tight = arm->params;
  tight.target_ratio = 0.25;
  auto direct = arm->codec->Compress(input, tight);
  ASSERT_TRUE(direct.ok());
  auto direct_back = arm->codec->Decompress(direct.value());
  ASSERT_TRUE(direct_back.ok());
  double recode_err = util::RootMeanSquareError(input, back.value());
  double direct_err = util::RootMeanSquareError(input, direct_back.value());
  EXPECT_LE(recode_err, 3.0 * direct_err + 1e-6) << GetParam();
}

TEST_P(RecodeTest, RecodeToLooserRatioFails) {
  auto arms = ExtendedLossyArms(4, 0.3);
  auto arm = FindArm(arms, GetParam());
  ASSERT_TRUE(arm.has_value());
  std::vector<double> input = QuantizeDecimals(SineSignal(1024, 64), 4);
  auto first = arm->codec->Compress(input, arm->params);
  ASSERT_TRUE(first.ok());
  auto recoded = arm->codec->Recode(first.value(), 0.9);
  EXPECT_FALSE(recoded.ok());
}

INSTANTIATE_TEST_SUITE_P(AllRecodable, RecodeTest,
                         ::testing::Values("bufflossy", "paa", "pla", "fft",
                                           "rrd", "lttb"));

// ---------------------------------------------------------------------------
// Codec-specific quality expectations.

TEST(PaaTest, PreservesWindowMeansExactly) {
  std::vector<double> input = RandomWalk(1000, 3);
  Paa codec;
  CodecParams p;
  p.target_ratio = 0.25;
  auto out = codec.Compress(input, p);
  ASSERT_TRUE(out.ok());
  auto back = codec.Decompress(out.value());
  ASSERT_TRUE(back.ok());
  // Total sum is preserved up to tail-window rounding.
  double sum_in = 0.0, sum_out = 0.0;
  for (double v : input) sum_in += v;
  for (double v : back.value()) sum_out += v;
  EXPECT_NEAR(sum_in, sum_out, std::abs(sum_in) * 1e-9 + 1e-6);
}

TEST(PaaTest, IdentityAtRatioOne) {
  std::vector<double> input = SineSignal(256);
  Paa codec;
  CodecParams p;
  p.target_ratio = 1.0;
  auto out = codec.Compress(input, p);
  ASSERT_TRUE(out.ok());
  auto back = codec.Decompress(out.value());
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.value()[i], input[i]);
  }
}

TEST(PlaTest, ExactOnLinearSignal) {
  std::vector<double> input(500);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = 2.0 + 0.5 * static_cast<double>(i);
  }
  Pla codec;
  CodecParams p;
  p.target_ratio = 0.05;
  auto out = codec.Compress(input, p);
  ASSERT_TRUE(out.ok());
  auto back = codec.Decompress(out.value());
  ASSERT_TRUE(back.ok());
  // f32 parameter storage bounds the error.
  EXPECT_LT(util::MaxAbsoluteError(input, back.value()), 0.05);
}

TEST(PlaTest, TracksExtremesBetterThanPaa) {
  // On a monotone ramp the line endpoints reach the true extreme while
  // window means undershoot it by half a window — the mechanism behind
  // PLA winning Max queries in Fig 9.
  std::vector<double> input(2048);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<double>(i) * 0.1;
  }
  CodecParams p;
  p.target_ratio = 0.05;
  Pla pla;
  Paa paa;
  auto pla_back = pla.Decompress(pla.Compress(input, p).value());
  auto paa_back = paa.Decompress(paa.Compress(input, p).value());
  ASSERT_TRUE(pla_back.ok());
  ASSERT_TRUE(paa_back.ok());
  double max_in = input.back();
  double pla_max = *std::max_element(pla_back.value().begin(),
                                     pla_back.value().end());
  double paa_max = *std::max_element(paa_back.value().begin(),
                                     paa_back.value().end());
  EXPECT_LT(std::abs(max_in - pla_max), std::abs(max_in - paa_max));
}

TEST(FftTest, NearExactOnPureTone) {
  // One tone -> a couple of coefficients reconstruct it almost exactly.
  std::vector<double> input = SineSignal(1024, 64.0, 5.0, 1.0);
  FftCodec codec;
  CodecParams p;
  p.target_ratio = 0.05;
  auto out = codec.Compress(input, p);
  ASSERT_TRUE(out.ok());
  auto back = codec.Decompress(out.value());
  ASSERT_TRUE(back.ok());
  EXPECT_LT(util::RootMeanSquareError(input, back.value()), 0.01);
}

TEST(FftTest, HandlesNonPowerOfTwoLengths) {
  // (Series this small are dominated by the header; the framework never
  // produces segments under ~100 points, so start there.)
  for (size_t n : {100u, 777u, 1000u, 1029u}) {
    std::vector<double> input = SineSignal(n, 25.0);
    FftCodec codec;
    CodecParams p;
    p.target_ratio = 0.5;
    auto out = codec.Compress(input, p);
    ASSERT_TRUE(out.ok()) << n;
    auto back = codec.Decompress(out.value());
    ASSERT_TRUE(back.ok()) << n;
    ASSERT_EQ(back.value().size(), n);
    EXPECT_LT(util::RootMeanSquareError(input, back.value()), 0.6) << n;
  }
}

TEST(BuffLossyTest, FloorNearOneEighth) {
  std::vector<double> input = QuantizeDecimals(RandomWalk(2000, 17), 4);
  BuffLossy codec;
  EXPECT_TRUE(codec.SupportsRatio(0.25, input.size()));
  EXPECT_FALSE(codec.SupportsRatio(0.05, input.size()));
  CodecParams p;
  p.precision = 4;
  p.target_ratio = 0.05;
  auto out = codec.Compress(input, p);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(BuffLossyTest, MinimalPerturbationAtMildRatio) {
  std::vector<double> input = QuantizeDecimals(RandomWalk(2000, 17), 4);
  util::RunningStats stats;
  for (double v : input) stats.Add(v);
  BuffLossy codec;
  CodecParams p;
  p.precision = 4;
  p.target_ratio = 0.5;
  auto out = codec.Compress(input, p);
  ASSERT_TRUE(out.ok());
  auto back = codec.Decompress(out.value());
  ASSERT_TRUE(back.ok());
  // Dropping low planes perturbs values by far less than the signal range.
  double range = stats.max() - stats.min();
  EXPECT_LT(util::MaxAbsoluteError(input, back.value()), range * 0.01);
}

TEST(BuffLossyTest, RecodeMatchesDirectCompression) {
  // Byte-plane truncation is exact: recode(0.5 -> 0.2) must byte-equal
  // direct compression at 0.2.
  std::vector<double> input = QuantizeDecimals(RandomWalk(4000, 9), 4);
  BuffLossy codec;
  CodecParams half;
  half.precision = 4;
  half.target_ratio = 0.6;
  auto first = codec.Compress(input, half);
  ASSERT_TRUE(first.ok());
  auto recoded = codec.Recode(first.value(), 0.2);
  ASSERT_TRUE(recoded.ok());
  CodecParams tight;
  tight.precision = 4;
  tight.target_ratio = 0.2;
  auto direct = codec.Compress(input, tight);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(recoded.value(), direct.value());
}

TEST(RrdSampleTest, ReplicatesOneValuePerWindow) {
  std::vector<double> input = SineSignal(1000, 40.0);
  RrdSample codec;
  CodecParams p;
  p.target_ratio = 0.1;
  auto out = codec.Compress(input, p);
  ASSERT_TRUE(out.ok());
  auto back = codec.Decompress(out.value());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), input.size());
  // Every reconstructed value must be a genuine input value from its window.
  // Windows are contiguous, so check membership in the full input.
  for (double v : back.value()) {
    bool found = false;
    for (double u : input) {
      if (u == v) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(LttbTest, KeepsEndpointsExactly) {
  std::vector<double> input = RandomWalk(512, 77);
  Lttb codec;
  CodecParams p;
  p.target_ratio = 0.1;
  auto out = codec.Compress(input, p);
  ASSERT_TRUE(out.ok());
  auto back = codec.Decompress(out.value());
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back.value().front(), input.front(), 1e-4);
  EXPECT_NEAR(back.value().back(), input.back(), 1e-4);
}

TEST(LttbTest, KeepsSpikes) {
  // A single large spike must survive LTTB (it forms the largest triangle).
  std::vector<double> input(400, 1.0);
  input[200] = 100.0;
  Lttb codec;
  CodecParams p;
  p.target_ratio = 0.1;
  auto out = codec.Compress(input, p);
  ASSERT_TRUE(out.ok());
  auto back = codec.Decompress(out.value());
  ASSERT_TRUE(back.ok());
  double max_v =
      *std::max_element(back.value().begin(), back.value().end());
  EXPECT_NEAR(max_v, 100.0, 1e-3);
}

}  // namespace
}  // namespace adaedge::compress
