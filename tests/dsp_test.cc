// FFT substrate tests: agreement with a naive DFT (exercising both the
// radix-2 and Bluestein paths), inverse identity, and Parseval's theorem.

#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/compress/dsp.h"
#include "adaedge/util/rng.h"

namespace adaedge::compress::dsp {
namespace {

std::vector<std::complex<double>> NaiveDft(std::span<const double> x) {
  size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (size_t t = 0; t < n; ++t) {
      double angle = -2.0 * M_PI * static_cast<double>(k * t) /
                     static_cast<double>(n);
      acc += x[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> RandomSignal(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.NextUniform(-5.0, 5.0);
  return x;
}

class FftDftAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FftDftAgreementTest, MatchesNaiveDft) {
  size_t n = GetParam();
  std::vector<double> x = RandomSignal(n, 100 + n);
  auto fast = FftReal(x);
  auto naive = NaiveDft(x);
  ASSERT_EQ(fast.size(), n);
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), naive[k].real(), 1e-6 * n) << "k=" << k;
    EXPECT_NEAR(fast[k].imag(), naive[k].imag(), 1e-6 * n) << "k=" << k;
  }
}

// Powers of two exercise radix-2; the rest exercise Bluestein.
INSTANTIATE_TEST_SUITE_P(Lengths, FftDftAgreementTest,
                         ::testing::Values(1, 2, 4, 8, 64, 256,  // radix-2
                                           3, 5, 7, 100, 127, 360));

class FftInverseTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FftInverseTest, InverseRecoversSignal) {
  size_t n = GetParam();
  std::vector<double> x = RandomSignal(n, 200 + n);
  auto spectrum = FftReal(x);
  auto back = InverseFftReal(spectrum);
  ASSERT_EQ(back.size(), n);
  for (size_t t = 0; t < n; ++t) {
    EXPECT_NEAR(back[t], x[t], 1e-8 * n) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftInverseTest,
                         ::testing::Values(1, 2, 16, 1024, 3, 37, 999));

TEST(FftTest, ParsevalHolds) {
  std::vector<double> x = RandomSignal(512, 7);
  auto spectrum = FftReal(x);
  double time_energy = 0.0;
  for (double v : x) time_energy += v * v;
  double freq_energy = 0.0;
  for (const auto& c : spectrum) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(x.size()), time_energy,
              1e-6 * time_energy);
}

TEST(FftTest, PureToneConcentratesEnergy) {
  size_t n = 256;
  std::vector<double> x(n);
  for (size_t t = 0; t < n; ++t) {
    x[t] = std::sin(2.0 * M_PI * 8.0 * static_cast<double>(t) /
                    static_cast<double>(n));
  }
  auto spectrum = FftReal(x);
  // All energy at bins 8 and n-8.
  double at_tone = std::abs(spectrum[8]) + std::abs(spectrum[n - 8]);
  double elsewhere = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (k != 8 && k != n - 8) elsewhere += std::abs(spectrum[k]);
  }
  EXPECT_GT(at_tone, 100.0 * elsewhere);
}

TEST(FftTest, EmptyAndSingle) {
  std::vector<std::complex<double>> empty;
  Fft(empty, false);  // must not crash
  EXPECT_TRUE(empty.empty());
  auto one = FftReal(std::vector<double>{42.0});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].real(), 42.0);
}

TEST(FftTest, LinearityHolds) {
  std::vector<double> a = RandomSignal(100, 11);
  std::vector<double> b = RandomSignal(100, 13);
  std::vector<double> sum(100);
  for (size_t i = 0; i < 100; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  auto fa = FftReal(a);
  auto fb = FftReal(b);
  auto fsum = FftReal(sum);
  for (size_t k = 0; k < 100; ++k) {
    auto expected = 2.0 * fa[k] + 3.0 * fb[k];
    EXPECT_NEAR(std::abs(fsum[k] - expected), 0.0, 1e-7);
  }
}

}  // namespace
}  // namespace adaedge::compress::dsp
