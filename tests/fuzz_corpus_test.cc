// Deterministic replay of the committed fuzz corpus (tests/corpus/*.bin)
// through the real fuzz targets from tools/fuzz. Every corpus file —
// including crash reproducers dropped in as <target>__crash_<what>.bin —
// becomes a permanent regression that runs under the full sanitizer
// matrix with no libFuzzer dependency.
//
// The target is picked from the filename prefix before the double
// underscore ("gorilla__smooth64.bin" -> FuzzGorilla). An unknown prefix
// or an empty corpus directory is a test failure: it means a corpus file
// was added without a matching fuzz target (or the build lost track of
// the corpus path), not that there is nothing to check.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz_targets.h"

#ifndef ADAEDGE_CORPUS_DIR
#error "ADAEDGE_CORPUS_DIR must point at tests/corpus (set by CMake)"
#endif

namespace adaedge {
namespace {

using FuzzTarget = int (*)(const uint8_t*, size_t);

const std::map<std::string, FuzzTarget>& TargetsByPrefix() {
  static const std::map<std::string, FuzzTarget> kTargets = {
      {"gorilla", fuzz::FuzzGorilla},
      {"chimp", fuzz::FuzzChimp},
      {"elf", fuzz::FuzzElf},
      {"sprintz", fuzz::FuzzSprintz},
      {"buff", fuzz::FuzzBuff},
      {"dictionary", fuzz::FuzzDictionary},
      {"rle", fuzz::FuzzRle},
      {"deflate", fuzz::FuzzDeflate},
      {"fastlz", fuzz::FuzzFastLz},
      {"raw", fuzz::FuzzRaw},
      {"internal_formats", fuzz::FuzzInternalFormats},
      {"payload_query", fuzz::FuzzPayloadQuery},
      {"store_io", fuzz::FuzzStoreIo},
      {"roundtrip", fuzz::FuzzRoundTrip},
      {"network_trace", fuzz::FuzzNetworkTrace},
  };
  return kTargets;
}

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

TEST(FuzzCorpusTest, ReplaysEveryCorpusFile) {
  const std::filesystem::path dir = ADAEDGE_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir))
      << "corpus directory missing: " << dir;

  size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.substr(name.size() - 4) != ".bin") continue;

    const size_t sep = name.find("__");
    ASSERT_NE(sep, std::string::npos)
        << name << ": corpus files are named <target>__<desc>.bin";
    const std::string prefix = name.substr(0, sep);
    const auto it = TargetsByPrefix().find(prefix);
    ASSERT_NE(it, TargetsByPrefix().end())
        << name << ": no fuzz target registered for prefix '" << prefix
        << "'";

    SCOPED_TRACE(name);
    const std::vector<uint8_t> bytes = ReadFile(entry.path());
    // A finding aborts the process (ADAEDGE_FUZZ_CHECK) or trips a
    // sanitizer; reaching the return value means the input was handled.
    EXPECT_EQ(it->second(bytes.data(), bytes.size()), 0);
    ++replayed;
  }
  EXPECT_GT(replayed, 0u) << "corpus directory is empty: " << dir
                          << " (run adaedge_make_corpus to regenerate)";
}

// Every registered target must also be total on degenerate inputs that
// never appear in the committed corpus: empty, and a one-byte input per
// possible selector value.
TEST(FuzzCorpusTest, EveryTargetHandlesDegenerateInputs) {
  for (const auto& [prefix, target] : TargetsByPrefix()) {
    SCOPED_TRACE(prefix);
    EXPECT_EQ(target(nullptr, 0), 0);
    for (int b = 0; b < 256; ++b) {
      const uint8_t byte = static_cast<uint8_t>(b);
      EXPECT_EQ(target(&byte, 1), 0);
    }
  }
}

}  // namespace
}  // namespace adaedge
