// Coverage for the remaining substrate pieces: the dense Cholesky solver,
// logging levels, the offline node's FIFO mode and transcoding path, the
// selector under UCB, and evaluation fresh-window behaviour.

#include <vector>

#include <gtest/gtest.h>

#include "adaedge/compress/transcode.h"
#include "adaedge/core/evaluation.h"
#include "adaedge/core/offline_node.h"
#include "adaedge/core/online_selector.h"
#include "adaedge/data/generators.h"
#include "adaedge/util/linalg.h"
#include "adaedge/util/logging.h"
#include "adaedge/util/rng.h"
#include "testing_util.h"

namespace adaedge {
namespace {

TEST(CholeskyTest, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [6,5] -> x = [1,1].
  std::vector<double> a = {4, 2, 2, 3};
  std::vector<double> b = {6, 5};
  auto x = util::CholeskySolve(a, b, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 1.0, 1e-12);
}

TEST(CholeskyTest, RandomSpdSystemsRoundtrip) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 1 + rng.NextBelow(12);
    // A = M M^T + I is SPD.
    std::vector<double> m(n * n);
    for (auto& v : m) v = rng.NextGaussian();
    std::vector<double> a(n * n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        for (size_t k = 0; k < n; ++k) {
          a[i * n + j] += m[i * n + k] * m[j * n + k];
        }
      }
      a[i * n + i] += 1.0;
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.NextUniform(-2, 2);
    std::vector<double> b(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
    }
    auto x = util::CholeskySolve(a, b, n);
    ASSERT_TRUE(x.ok()) << trial;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x.value()[i], x_true[i], 1e-8) << trial << "," << i;
    }
  }
}

TEST(CholeskyTest, RejectsNonSpdAndBadShapes) {
  std::vector<double> not_spd = {1, 2, 2, 1};  // eigenvalues 3, -1
  std::vector<double> b = {1, 1};
  auto bad = util::CholeskySolve(not_spd, b, 2);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kFailedPrecondition);
  auto shape = util::CholeskySolve(not_spd, b, 3);
  EXPECT_EQ(shape.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(LoggingTest, LevelFilterRoundtrip) {
  util::LogLevel original = util::GetLogLevel();
  util::SetLogLevel(util::LogLevel::kError);
  EXPECT_EQ(util::GetLogLevel(), util::LogLevel::kError);
  // Below-threshold logging must be a cheap no-op (no crash, no output
  // assertions possible here, but the call path is exercised).
  ADAEDGE_LOG(kDebug) << "suppressed " << 42;
  util::SetLogLevel(original);
}

TEST(OfflineFifoTest, OldestFirstStillBoundsStorage) {
  core::OfflineConfig config;
  config.storage_budget_bytes = 128 << 10;
  config.use_lru = false;  // TVStore-style oldest-first
  core::OfflineNode node(
      config, core::TargetSpec::AggAccuracy(query::AggKind::kSum));
  data::CbfStream stream(15);
  std::vector<double> segment(1024);
  for (uint64_t i = 0; i < 120; ++i) {
    stream.Fill(segment);
    ASSERT_TRUE(node.Ingest(i, i * 0.005, segment).ok());
    EXPECT_LE(node.store().budget()->used(), config.storage_budget_bytes);
  }
  // Under FIFO the OLDEST segments are the lossy ones.
  auto oldest = node.store().Peek(0);
  auto newest = node.store().Peek(119);
  ASSERT_TRUE(oldest.ok());
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(oldest.value().meta().state, core::SegmentState::kLossy);
  EXPECT_NE(newest.value().meta().state, core::SegmentState::kLossy);
}

TEST(OnlineSelectorUcbTest, WorksEndToEnd) {
  core::OnlineConfig config;
  config.target_ratio = 0.1;
  config.policy = bandit::PolicyKind::kUcb1;
  core::OnlineSelector selector(
      config, core::TargetSpec::AggAccuracy(query::AggKind::kSum));
  data::CbfStream stream(17);
  std::vector<double> segment(1024);
  double late_acc = 0.0;
  for (uint64_t i = 0; i < 120; ++i) {
    stream.Fill(segment);
    auto outcome = selector.Process(i, i * 0.005, segment);
    ASSERT_TRUE(outcome.ok());
    if (i >= 80) late_acc += outcome.value().accuracy;
  }
  EXPECT_GT(late_acc / 40.0, 0.9);
}

TEST(EvaluateRetainedTest, FreshWindowIsolatesRecentSegments) {
  sim::StorageBudget budget(1 << 20, 0.8);
  core::SegmentStore store(&budget, core::MakeLruPolicy());
  std::unordered_map<uint64_t, std::vector<double>> originals;
  // Old segments: badly approximated; fresh segments: exact.
  for (uint64_t id = 0; id < 12; ++id) {
    std::vector<double> values =
        testing::QuantizeDecimals(testing::SineSignal(512, 31 + id), 4);
    originals[id] = values;
    core::Segment segment = core::Segment::FromValues(id, id * 1.0, values);
    if (id < 8) {
      compress::CodecParams params;
      params.target_ratio = 0.02;  // destroy the old ones
      ASSERT_TRUE(
          segment.Reencode(compress::CodecId::kRrdSample, params, values)
              .ok());
    }
    ASSERT_TRUE(store.Put(std::move(segment)).ok());
  }
  core::TargetEvaluator eval(
      core::TargetSpec::AggAccuracy(query::AggKind::kMax));
  auto quality = core::EvaluateRetained(store, originals, eval,
                                        /*fresh_window=*/4);
  ASSERT_TRUE(quality.ok());
  EXPECT_DOUBLE_EQ(quality.value().fresh_accuracy, 1.0);
  EXPECT_LT(quality.value().accuracy, quality.value().fresh_accuracy);
}

TEST(OfflineTranscodeIntegrationTest, CrossCodecRecodesStayConsistent) {
  // Force a PAA-first then PLA-only chain so the recoder exercises the
  // direct PAA->PLA transcode path; results must stay decodable and the
  // budget respected.
  core::OfflineConfig config;
  config.storage_budget_bytes = 96 << 10;
  config.lossy_arms.clear();
  auto pool = compress::ExtendedLossyArms(4);
  config.lossy_arms.push_back(*compress::FindArm(pool, "paa"));
  config.lossy_arms.push_back(*compress::FindArm(pool, "pla"));
  config.bandit.epsilon = 0.5;  // ping-pong between the two arms
  core::OfflineNode node(
      config, core::TargetSpec::AggAccuracy(query::AggKind::kSum));
  data::CbfStream stream(19);
  std::vector<double> segment(1024);
  for (uint64_t i = 0; i < 150; ++i) {
    stream.Fill(segment);
    ASSERT_TRUE(node.Ingest(i, i * 0.005, segment).ok()) << i;
  }
  for (uint64_t id : node.store().AllIds()) {
    auto seg = node.store().Peek(id);
    ASSERT_TRUE(seg.ok());
    auto values = seg.value().Materialize();
    ASSERT_TRUE(values.ok()) << "segment " << id;
    EXPECT_EQ(values.value().size(), 1024u);
  }
}

}  // namespace
}  // namespace adaedge
