// Multithreaded stress tests for the compression hot path: the threaded
// Pipeline over the shared OnlineSelector, and the selector's three-phase
// (select -> compress -> update) Process contract. Run under
// ThreadSanitizer in CI (ADAEDGE_SANITIZE=thread).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/core/online_selector.h"
#include "adaedge/core/pipeline.h"
#include "adaedge/data/generators.h"

namespace adaedge::core {
namespace {

constexpr size_t kSegmentLength = 256;

std::vector<std::vector<double>> MakeCbfSegments(size_t count,
                                                 uint64_t seed) {
  data::CbfStream stream(seed);
  std::vector<std::vector<double>> segments(count);
  for (auto& segment : segments) {
    segment.resize(kSegmentLength);
    stream.Fill(segment);
  }
  return segments;
}

TEST(PipelineConfigTest, CreateRejectsConfigsThatWouldDeadlock) {
  // Regression: the unchecked constructor accepted capacity-0 queues —
  // BoundedQueue::Push waits for space that can never exist, so the
  // first Ingest (or the first compression worker) deadlocked forever.
  // Create() is the checked path that refuses to build such a pipeline.
  OnlineConfig online;
  TargetSpec target = TargetSpec::AggAccuracy(query::AggKind::kSum);

  PipelineConfig config;
  EXPECT_TRUE(config.Validate().ok());
  ASSERT_TRUE(Pipeline::Create(config, online, target).ok());

  config = PipelineConfig{};
  config.uncompressed_capacity = 0;
  EXPECT_EQ(config.Validate().code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(Pipeline::Create(config, online, target).ok());

  config = PipelineConfig{};
  config.compressed_capacity = 0;
  EXPECT_EQ(config.Validate().code(), util::StatusCode::kInvalidArgument);

  config = PipelineConfig{};
  config.compress_threads = 0;  // pipeline would never drain
  EXPECT_EQ(config.Validate().code(), util::StatusCode::kInvalidArgument);
  config.compress_threads = -2;
  EXPECT_EQ(config.Validate().code(), util::StatusCode::kInvalidArgument);

  config = PipelineConfig{};
  config.segment_length = 0;
  EXPECT_EQ(config.Validate().code(), util::StatusCode::kInvalidArgument);

  // A bad nested OnlineConfig is rejected through the same gate.
  config = PipelineConfig{};
  online.target_ratio = -1.0;
  auto pipeline = Pipeline::Create(config, online, target);
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(PipelineConfigTest, CreatedPipelineRuns) {
  PipelineConfig config;
  config.compress_threads = 2;
  config.uncompressed_capacity = 8;
  config.compressed_capacity = 8;
  OnlineConfig online;
  online.target_ratio = 1.0;
  auto pipeline = Pipeline::Create(
      config, online, TargetSpec::AggAccuracy(query::AggKind::kSum));
  ASSERT_TRUE(pipeline.ok());
  auto& pipe = *pipeline.value();
  pipe.Start();
  auto segments = MakeCbfSegments(16, 77);
  for (auto& segment : segments) {
    ASSERT_TRUE(pipe.Ingest(std::move(segment), 0.0));
  }
  size_t received = 0;
  std::thread consumer([&] {
    while (pipe.PopCompressed()) ++received;
  });
  pipe.Stop();
  consumer.join();
  EXPECT_EQ(received, 16u);
  EXPECT_EQ(pipe.segments_out(), 16u);
}

TEST(PipelineStressTest, FourThreadsMixedTargetsNoLostNoDuplicatedIds) {
  PipelineConfig pipe_config;
  pipe_config.compress_threads = 4;
  pipe_config.segment_length = kSegmentLength;
  pipe_config.uncompressed_capacity = 32;
  pipe_config.compressed_capacity = 32;
  OnlineConfig online;
  online.target_ratio = 0.35;  // lossless misses, lossy reachable
  Pipeline pipeline(pipe_config, online,
                    TargetSpec::AggAccuracy(query::AggKind::kSum));
  pipeline.Start();

  constexpr size_t kSegments = 2048;
  std::set<uint64_t> ids;
  size_t received = 0;
  std::thread consumer([&] {
    while (auto out = pipeline.PopCompressed()) {
      EXPECT_GT(out->segment.SizeBytes(), 0u);
      EXPECT_TRUE(ids.insert(out->segment.meta().id).second)
          << "duplicate id " << out->segment.meta().id;
      ++received;
    }
  });

  // Two producers; halfway through, flip the target from "lossy required"
  // to "lossless suffices" so both phases and the mid-flight re-probe run
  // under contention.
  auto produce = [&](uint64_t seed) {
    auto segments = MakeCbfSegments(kSegments / 2, seed);
    for (size_t i = 0; i < segments.size(); ++i) {
      if (i == segments.size() / 2) {
        pipeline.selector().SetTargetRatio(seed % 2 == 0 ? 1.0 : 0.05);
      }
      ASSERT_TRUE(pipeline.Ingest(std::move(segments[i]), i * 0.001));
    }
  };
  std::thread producer_a(produce, 101);
  std::thread producer_b(produce, 102);
  producer_a.join();
  producer_b.join();
  pipeline.Stop();
  consumer.join();

  // Counter invariants at quiescence: nothing lost, nothing duplicated.
  EXPECT_EQ(pipeline.segments_in(), kSegments);
  EXPECT_EQ(pipeline.segments_out(), kSegments);
  EXPECT_LE(pipeline.segments_out(), pipeline.segments_in());
  EXPECT_EQ(received, kSegments);
  EXPECT_EQ(ids.size(), kSegments);
  EXPECT_GT(pipeline.bytes_in(), 0u);
  EXPECT_GT(pipeline.bytes_out(), 0u);
}

TEST(PipelineStressTest, StopWhileProducersMidPushShutsDownCleanly) {
  PipelineConfig pipe_config;
  pipe_config.compress_threads = 2;
  pipe_config.segment_length = kSegmentLength;
  pipe_config.uncompressed_capacity = 4;  // producers block quickly
  pipe_config.compressed_capacity = 4;    // consumer absent: workers block
  OnlineConfig online;
  online.target_ratio = 1.0;
  Pipeline pipeline(pipe_config, online,
                    TargetSpec::AggAccuracy(query::AggKind::kSum));
  pipeline.Start();

  std::atomic<size_t> accepted{0};
  std::atomic<size_t> rejected{0};
  auto produce = [&](uint64_t seed) {
    auto segments = MakeCbfSegments(256, seed);
    for (auto& segment : segments) {
      if (pipeline.Ingest(std::move(segment), 0.0)) {
        ++accepted;
      } else {
        ++rejected;
      }
    }
  };
  std::thread producer_a(produce, 201);
  std::thread producer_b(produce, 202);
  // Let producers wedge against the full buffers, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread consumer([&] {
    while (pipeline.PopCompressed()) {
    }
  });
  pipeline.Stop();
  producer_a.join();
  producer_b.join();
  consumer.join();

  // Rejected pushes must not count as ingested, and no accepted segment
  // may outnumber what the workers produced... in either direction.
  EXPECT_EQ(pipeline.segments_in(), accepted.load());
  EXPECT_GT(rejected.load(), 0u);  // Stop really interrupted mid-Push
  EXPECT_LE(pipeline.segments_out(), pipeline.segments_in());
}

TEST(OnlineSelectorStressTest, ConcurrentProcessWithTargetChangesAndReads) {
  OnlineConfig config;
  config.target_ratio = 0.3;
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));
  constexpr int kThreads = 4;
  constexpr size_t kPerThread = 300;
  std::atomic<uint64_t> next_id{0};
  std::atomic<size_t> processed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto segments = MakeCbfSegments(kPerThread, 300 + t);
      for (auto& segment : segments) {
        auto outcome =
            selector.Process(next_id.fetch_add(1), 0.0, segment);
        if (outcome.ok()) ++processed;
      }
    });
  }
  // A control-plane thread exercises the reader/updater API concurrently.
  std::thread control([&] {
    for (int i = 0; i < 50; ++i) {
      selector.SetTargetRatio(i % 2 == 0 ? 0.3 : 0.6);
      (void)selector.ArmCounts();
      (void)selector.lossless_active();
      (void)selector.target_ratio();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& worker : workers) worker.join();
  control.join();
  EXPECT_EQ(processed.load(), kThreads * kPerThread);

  // Every bandit pull completed: counts add up to the processed total or
  // more (a segment may pull lossless AND lossy on a miss).
  uint64_t total_pulls = 0;
  for (const auto& row : selector.ArmCounts()) {
    total_pulls += std::stoull(row.substr(row.rfind(':') + 1));
  }
  EXPECT_GE(total_pulls, processed.load());
}

/// Lossless "codec" that parks inside Compress until `expected` threads
/// are in there simultaneously. Proves codec work runs OUTSIDE the
/// selector's critical section: under the old design (mutex held across
/// Compress) the rendezvous can never complete and the test times out.
class RendezvousCodec final : public compress::Codec {
 public:
  explicit RendezvousCodec(int expected) : expected_(expected) {}

  compress::CodecId id() const override { return compress::CodecId::kRaw; }
  compress::CodecKind kind() const override {
    return compress::CodecKind::kLossless;
  }

  util::Result<std::vector<uint8_t>> Compress(
      std::span<const double> values,
      const compress::CodecParams&) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++inside_;
      peak_ = std::max(peak_, inside_);
      cv_.notify_all();
      cv_.wait_for(lock, std::chrono::seconds(5),
                   [&] { return peak_ >= expected_; });
      --inside_;
    }
    const auto* bytes = reinterpret_cast<const uint8_t*>(values.data());
    return std::vector<uint8_t>(bytes,
                                bytes + values.size() * sizeof(double));
  }

  util::Result<std::vector<double>> Decompress(
      std::span<const uint8_t> payload) const override {
    const auto* doubles = reinterpret_cast<const double*>(payload.data());
    return std::vector<double>(doubles,
                               doubles + payload.size() / sizeof(double));
  }

  int peak() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

 private:
  const int expected_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable int inside_ = 0;
  mutable int peak_ = 0;
};

TEST(OnlineSelectorStressTest, CompressRunsOutsideTheCriticalSection) {
  auto codec = std::make_shared<RendezvousCodec>(2);
  compress::CodecArm arm;
  arm.name = "rendezvous";
  arm.codec = codec;
  OnlineConfig config;
  config.target_ratio = 2.0;  // raw always fits: stays lossless
  config.lossless_arms = {arm};
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));
  std::vector<double> values(kSegmentLength, 1.5);
  std::thread a([&] { ASSERT_TRUE(selector.Process(0, 0.0, values).ok()); });
  std::thread b([&] { ASSERT_TRUE(selector.Process(1, 0.0, values).ok()); });
  a.join();
  b.join();
  // Both threads were inside Compress at the same time — impossible if
  // Process held the selector mutex across the codec call.
  EXPECT_GE(codec->peak(), 2);
}

TEST(OnlineSelectorStressTest, ConcurrentProcessWithLinkObservations) {
  // The network environment layer's control plane racing the data plane:
  // ObserveLink epochs (retarget + re-gate + discount), SetTargetRatio
  // and reader APIs against 4 Process threads. Run under TSan in CI; the
  // deadline shaping snapshot and the shift-gating mask are the new
  // state this exercises.
  OnlineConfig config;
  config.target_ratio = 0.3;
  config.on_shift = ShiftPolicy::kDiscount;
  config.shift_keep_fraction = 0.5;
  config.deadline.enabled = true;
  config.deadline.budget_seconds = 0.05;
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));
  constexpr int kThreads = 4;
  constexpr size_t kPerThread = 250;
  std::atomic<uint64_t> next_id{0};
  std::atomic<size_t> processed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto segments = MakeCbfSegments(kPerThread, 900 + t);
      for (auto& segment : segments) {
        auto outcome =
            selector.Process(next_id.fetch_add(1), 0.0, segment);
        if (outcome.ok()) ++processed;
      }
    });
  }
  std::thread control([&] {
    for (uint64_t i = 1; i <= 60; ++i) {
      // Alternate healthy / degraded / outage regimes; every third
      // observation repeats the previous epoch (must be a no-op).
      uint64_t epoch = i / 3 + 1;
      switch (i % 3) {
        case 0:
          selector.ObserveLink(epoch, 8e6, 1.0, 0.0);
          break;
        case 1:
          selector.ObserveLink(epoch, 2.4e5, 0.3, 0.05);
          break;
        default:
          selector.ObserveLink(epoch, 0.0, 0.0, 0.05);  // outage
          break;
      }
      (void)selector.link_bandwidth();
      (void)selector.target_ratio();
      (void)selector.ArmCounts();
      if (i % 10 == 0) selector.SetTargetRatio(0.4);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& worker : workers) worker.join();
  control.join();
  EXPECT_EQ(processed.load(), kThreads * kPerThread);
  EXPECT_EQ(selector.PendingPulls(), 0u);
}

}  // namespace
}  // namespace adaedge::core
