// ML substrate tests: model correctness on separable fixtures,
// serialization roundtrips, and the relative-accuracy metric.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/data/generators.h"
#include "adaedge/ml/decision_tree.h"
#include "adaedge/ml/kmeans.h"
#include "adaedge/ml/knn.h"
#include "adaedge/ml/model.h"
#include "adaedge/ml/random_forest.h"

namespace adaedge::ml {
namespace {

// Trivially separable two-class dataset: class = (feature0 > 0).
Dataset MakeSeparable(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  Dataset data;
  std::vector<double> row(4);
  for (size_t i = 0; i < n; ++i) {
    int label = static_cast<int>(i % 2);
    row[0] = label == 1 ? rng.NextUniform(1.0, 2.0)
                        : rng.NextUniform(-2.0, -1.0);
    for (size_t j = 1; j < row.size(); ++j) {
      row[j] = rng.NextGaussian();  // noise features
    }
    data.features.AppendRow(row);
    data.labels.push_back(label);
  }
  return data;
}

double HoldoutAccuracy(const Model& model, const Dataset& test) {
  size_t correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    if (model.Predict(test.features.Row(i)) == test.labels[i]) ++correct;
  }
  return test.size() > 0
             ? static_cast<double>(correct) / static_cast<double>(test.size())
             : 0.0;
}

TEST(DecisionTreeTest, LearnsSeparableData) {
  auto split = SplitTrainTest(MakeSeparable(400, 3));
  auto tree = DecisionTree::Train(split.train, TreeConfig{});
  EXPECT_GT(HoldoutAccuracy(*tree, split.test), 0.95);
}

TEST(DecisionTreeTest, LearnsCbfClasses) {
  auto split = SplitTrainTest(data::MakeCbfDataset(600, 128, 7));
  auto tree = DecisionTree::Train(split.train, TreeConfig{});
  // CBF is noisy; a single tree should still comfortably beat chance (1/3).
  EXPECT_GT(HoldoutAccuracy(*tree, split.test), 0.6);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  TreeConfig config;
  config.max_depth = 1;
  auto tree = DecisionTree::Train(MakeSeparable(200, 5), config);
  // Depth 1 = a root plus at most two leaves.
  EXPECT_LE(tree->node_count(), 3u);
}

TEST(DecisionTreeTest, HandlesDegenerateData) {
  Dataset data;
  for (int i = 0; i < 10; ++i) {
    data.features.AppendRow(std::vector<double>{1.0, 1.0});
    data.labels.push_back(i % 2);  // identical features, mixed labels
  }
  auto tree = DecisionTree::Train(data, TreeConfig{});
  // No valid split exists; must produce a majority leaf, not crash.
  EXPECT_EQ(tree->node_count(), 1u);
}

TEST(DecisionTreeTest, SerializationRoundtrips) {
  auto data = data::MakeUcrLikeDataset(300, 64, 4, 11);
  auto tree = DecisionTree::Train(data, TreeConfig{});
  auto blob = SerializeModel(*tree);
  auto restored = DeserializeModel(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(restored.value()->Predict(data.features.Row(i)),
              tree->Predict(data.features.Row(i)));
  }
}

TEST(RandomForestTest, BeatsOrMatchesSingleTreeOnNoisyData) {
  auto split = SplitTrainTest(data::MakeCbfDataset(900, 128, 13));
  TreeConfig tree_config;
  tree_config.max_depth = 8;
  auto tree = DecisionTree::Train(split.train, tree_config);
  ForestConfig forest_config;
  forest_config.num_trees = 15;
  forest_config.tree.max_depth = 8;
  auto forest = RandomForest::Train(split.train, forest_config);
  double tree_acc = HoldoutAccuracy(*tree, split.test);
  double forest_acc = HoldoutAccuracy(*forest, split.test);
  EXPECT_GE(forest_acc + 0.02, tree_acc);
  EXPECT_GT(forest_acc, 0.6);
}

TEST(RandomForestTest, SerializationRoundtrips) {
  auto data = MakeSeparable(200, 17);
  ForestConfig config;
  config.num_trees = 7;
  auto forest = RandomForest::Train(data, config);
  auto blob = SerializeModel(*forest);
  auto restored = DeserializeModel(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value()->kind(), ModelKind::kRandomForest);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(restored.value()->Predict(data.features.Row(i)),
              forest->Predict(data.features.Row(i)));
  }
}

TEST(KnnTest, PerfectOnTrainingPoints) {
  auto data = MakeSeparable(100, 23);
  KnnConfig config;
  config.k = 1;
  auto knn = Knn::Train(data, config);
  EXPECT_DOUBLE_EQ(HoldoutAccuracy(*knn, data), 1.0);
}

TEST(KnnTest, LearnsUcrClasses) {
  auto split = SplitTrainTest(data::MakeUcrLikeDataset(500, 64, 5, 29));
  KnnConfig config;
  config.k = 3;
  auto knn = Knn::Train(split.train, config);
  EXPECT_GT(HoldoutAccuracy(*knn, split.test), 0.8);
}

TEST(KnnTest, SerializationRoundtrips) {
  auto data = MakeSeparable(64, 31);
  auto knn = Knn::Train(data, KnnConfig{});
  auto blob = SerializeModel(*knn);
  auto restored = DeserializeModel(blob);
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(restored.value()->Predict(data.features.Row(i)),
              knn->Predict(data.features.Row(i)));
  }
}

TEST(KMeansTest, SeparatesWellSeparatedBlobs) {
  util::Rng rng(37);
  Dataset data;
  std::vector<double> row(3);
  for (int i = 0; i < 300; ++i) {
    int blob = i % 3;
    for (auto& v : row) v = 10.0 * blob + rng.NextGaussian() * 0.3;
    data.features.AppendRow(row);
    data.labels.push_back(blob);
  }
  KMeansConfig config;
  config.k = 3;
  auto kmeans = KMeans::Train(data, config);
  // Same-blob rows must land in the same cluster; different blobs apart.
  for (int i = 0; i < 297; i += 3) {
    int c0 = kmeans->Predict(data.features.Row(i));
    int c1 = kmeans->Predict(data.features.Row(i + 1));
    int c2 = kmeans->Predict(data.features.Row(i + 2));
    EXPECT_EQ(c0, kmeans->Predict(data.features.Row((i + 3) % 300 == 0
                                                        ? 0
                                                        : i + 3)));
    EXPECT_NE(c0, c1);
    EXPECT_NE(c1, c2);
  }
}

TEST(KMeansTest, StableAssignmentUnderTinyPerturbation) {
  auto data = data::MakeCbfDataset(300, 128, 41);
  KMeansConfig config;
  config.k = 3;
  auto kmeans = KMeans::Train(data, config);
  util::Rng rng(43);
  size_t same = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    std::vector<double> noisy(data.features.Row(i).begin(),
                              data.features.Row(i).end());
    for (auto& v : noisy) v += rng.NextGaussian() * 1e-6;
    if (kmeans->Predict(data.features.Row(i)) == kmeans->Predict(noisy)) {
      ++same;
    }
  }
  EXPECT_EQ(same, data.size());
}

TEST(KMeansTest, SerializationRoundtrips) {
  auto data = data::MakeCbfDataset(120, 64, 47);
  KMeansConfig config;
  config.k = 4;
  auto kmeans = KMeans::Train(data, config);
  auto blob = SerializeModel(*kmeans);
  auto restored = DeserializeModel(blob);
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(restored.value()->Predict(data.features.Row(i)),
              kmeans->Predict(data.features.Row(i)));
  }
}

TEST(ModelSerializationTest, RejectsGarbage) {
  std::vector<uint8_t> junk = {0x00, 0x01, 0x02, 0x03};
  EXPECT_FALSE(DeserializeModel(junk).ok());
  std::vector<uint8_t> empty;
  EXPECT_FALSE(DeserializeModel(empty).ok());
}

TEST(ModelSerializationTest, RejectsTruncatedBlob) {
  auto data = MakeSeparable(50, 53);
  auto tree = DecisionTree::Train(data, TreeConfig{});
  auto blob = SerializeModel(*tree);
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(DeserializeModel(blob).ok());
}

TEST(RelativeMlAccuracyTest, IdenticalDataScoresOne) {
  auto data = MakeSeparable(100, 59);
  auto tree = DecisionTree::Train(data, TreeConfig{});
  EXPECT_DOUBLE_EQ(
      RelativeMlAccuracy(*tree, data.features, data.features), 1.0);
}

TEST(RelativeMlAccuracyTest, HeavyCorruptionScoresLow) {
  auto data = MakeSeparable(200, 61);
  auto tree = DecisionTree::Train(data, TreeConfig{});
  // Negating feature 0 flips every class by construction.
  Matrix corrupted = data.features;
  for (size_t i = 0; i < corrupted.rows(); ++i) {
    corrupted.At(i, 0) = -corrupted.At(i, 0);
  }
  EXPECT_LT(RelativeMlAccuracy(*tree, data.features, corrupted), 0.2);
}

}  // namespace
}  // namespace adaedge::ml
