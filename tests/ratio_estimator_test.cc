// RatioEstimator tests: NLMS convergence and regime-change adaptation,
// the pinned update rule, bit-identical determinism, prune-gate safety
// (never leaves zero supported arms), warm-started priors for arms added
// at runtime, estimator-state adoption across selectors and fleet
// shards, and a concurrent Process/mutation stress run (in CI also under
// ThreadSanitizer via the RatioEstimator test_filter entry).

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/compress/registry.h"
#include "adaedge/compress/segment_features.h"
#include "adaedge/core/arm_runtime.h"
#include "adaedge/core/fleet.h"
#include "adaedge/core/offline_node.h"
#include "adaedge/core/online_selector.h"
#include "adaedge/core/ratio_estimator.h"
#include "adaedge/data/generators.h"

namespace adaedge::core {
namespace {

using compress::ExtractSegmentFeatures;
using compress::SegmentFeatures;

RatioEstimatorConfig EnabledConfig() {
  RatioEstimatorConfig config;
  config.enabled = true;
  return config;
}

/// Feature vectors from a seeded CBF stream: realistic, varied, and
/// reproducible across runs.
std::vector<SegmentFeatures> CbfFeatures(size_t count, uint64_t seed) {
  data::CbfStream stream(seed);
  std::vector<double> values(256);
  std::vector<SegmentFeatures> out(count);
  for (auto& f : out) {
    stream.Fill(values);
    f = ExtractSegmentFeatures(values);
  }
  return out;
}

// ------------------------------------------------------------- config

TEST(RatioEstimatorConfigTest, ValidateRejectsBadKnobs) {
  EXPECT_TRUE(RatioEstimatorConfig{}.Validate().ok());

  RatioEstimatorConfig config;
  config.learning_rate = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.learning_rate = 2.0;
  EXPECT_FALSE(config.Validate().ok());

  config = RatioEstimatorConfig{};
  config.prune_margin = -0.1;
  EXPECT_FALSE(config.Validate().ok());

  config = RatioEstimatorConfig{};
  config.prune = true;
  config.explore_interval = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.explore_interval = 1;
  EXPECT_TRUE(config.Validate().ok());

  config = RatioEstimatorConfig{};
  config.presize_slack = 0.5;
  EXPECT_FALSE(config.Validate().ok());

  config = RatioEstimatorConfig{};
  config.min_observations = 0;
  EXPECT_FALSE(config.Validate().ok());
}

// ------------------------------------------------------------ learning

TEST(RatioEstimatorTest, UntrainedPredictsRawRatio) {
  RatioEstimator estimator(3, EnabledConfig());
  SegmentFeatures f = CbfFeatures(1, 3)[0];
  for (int arm = 0; arm < 3; ++arm) {
    EXPECT_DOUBLE_EQ(estimator.PredictRatio(arm, f), 1.0);
    EXPECT_FALSE(estimator.Trained(arm));
    EXPECT_EQ(estimator.Observations(arm), 0u);
  }
}

TEST(RatioEstimatorTest, ConvergesOnLinearTarget) {
  // The true ratio is linear in the features, so NLMS can represent it
  // exactly; after a few hundred observations the prediction and the
  // running MAE must both be tight.
  RatioEstimator estimator(1, EnabledConfig());
  auto train = CbfFeatures(400, 11);
  for (const auto& f : train) {
    const double y = 0.2 + 0.5 * f.v[1] + 0.1 * f.v[3];
    estimator.Observe(0, f, y, 2e-9, 0.5);
  }
  EXPECT_TRUE(estimator.Trained(0));
  EXPECT_LT(estimator.MeanAbsError(0), 0.02);
  for (const auto& f : CbfFeatures(20, 12)) {
    const double y = 0.2 + 0.5 * f.v[1] + 0.1 * f.v[3];
    EXPECT_NEAR(estimator.PredictRatio(0, f), y, 0.05);
  }
}

TEST(RatioEstimatorTest, AdaptsAfterRegimeChange) {
  // Same feature distribution, ratio regime jumps 0.8 -> 0.3 (the data
  // behind the features changed in a way the features do not see): the
  // online update must track the new regime, not average the two.
  RatioEstimator estimator(1, EnabledConfig());
  auto features = CbfFeatures(100, 21);
  for (const auto& f : features) estimator.Observe(0, f, 0.8, 2e-9, 0.5);
  EXPECT_NEAR(estimator.PredictRatio(0, features[0]), 0.8, 0.05);
  for (const auto& f : features) estimator.Observe(0, f, 0.3, 2e-9, 0.5);
  EXPECT_NEAR(estimator.PredictRatio(0, features[0]), 0.3, 0.05);
}

TEST(RatioEstimatorTest, NlmsUpdateRulePinned) {
  // Regression pin of the exact update rule on a short seeded trace:
  //   err = y - w.x;  w += learning_rate * err * x / (1e-6 + |x|^2)
  // with the bias-only prior w = (1, 0, ...). Any change to the rule,
  // the prior, the normalization floor, or the MAE EWMA (alpha = 0.25)
  // fails this test.
  RatioEstimatorConfig config = EnabledConfig();
  config.learning_rate = 0.5;
  RatioEstimator estimator(1, config);
  auto features = CbfFeatures(3, 31);
  const double ratios[] = {0.42, 0.5, 0.61};

  std::array<double, compress::kSegmentFeatureCount> w{};
  w[0] = 1.0;
  double mae = 0.0;
  for (int i = 0; i < 3; ++i) {
    estimator.Observe(0, features[i], ratios[i], 0.0, 0.0);
    double norm = 1e-6;
    for (double x : features[i].v) norm += x * x;
    double pred = 0.0;
    for (int j = 0; j < compress::kSegmentFeatureCount; ++j) {
      pred += w[static_cast<size_t>(j)] * features[i].v[static_cast<size_t>(j)];
    }
    const double err = ratios[i] - pred;
    for (int j = 0; j < compress::kSegmentFeatureCount; ++j) {
      w[static_cast<size_t>(j)] +=
          0.5 * err * features[i].v[static_cast<size_t>(j)] / norm;
    }
    mae += 0.25 * (std::fabs(err) - mae);
  }
  RatioEstimator::Snapshot snapshot = estimator.Export();
  ASSERT_EQ(snapshot.arms.size(), 1u);
  for (int j = 0; j < compress::kSegmentFeatureCount; ++j) {
    EXPECT_DOUBLE_EQ(snapshot.arms[0].ratio_weights[static_cast<size_t>(j)],
                     w[static_cast<size_t>(j)])
        << "weight " << j;
  }
  EXPECT_DOUBLE_EQ(snapshot.arms[0].mae, mae);
  EXPECT_EQ(snapshot.arms[0].observations, 3u);
}

TEST(RatioEstimatorTest, BitIdenticalAcrossInstances) {
  // No RNG anywhere in the update path: two instances fed the same
  // observation sequence end with bit-identical weights.
  RatioEstimator a(2, EnabledConfig());
  RatioEstimator b(2, EnabledConfig());
  auto features = CbfFeatures(200, 41);
  for (size_t i = 0; i < features.size(); ++i) {
    const double ratio = 0.3 + 0.4 * features[i].v[1];
    const double seconds = 1e-9 * static_cast<double>(i % 7);
    a.Observe(static_cast<int>(i % 2), features[i], ratio, seconds, 0.6);
    b.Observe(static_cast<int>(i % 2), features[i], ratio, seconds, 0.6);
  }
  RatioEstimator::Snapshot sa = a.Export();
  RatioEstimator::Snapshot sb = b.Export();
  ASSERT_EQ(sa.arms.size(), sb.arms.size());
  for (size_t arm = 0; arm < sa.arms.size(); ++arm) {
    for (int j = 0; j < compress::kSegmentFeatureCount; ++j) {
      EXPECT_EQ(sa.arms[arm].ratio_weights[static_cast<size_t>(j)],
                sb.arms[arm].ratio_weights[static_cast<size_t>(j)]);
      EXPECT_EQ(sa.arms[arm].seconds_weights[static_cast<size_t>(j)],
                sb.arms[arm].seconds_weights[static_cast<size_t>(j)]);
    }
    EXPECT_EQ(sa.arms[arm].mae, sb.arms[arm].mae);
  }
  EXPECT_EQ(sa.pool_reward_ewma, sb.pool_reward_ewma);
}

// ------------------------------------------------------------- pruning

TEST(RatioEstimatorTest, ForcedExplorationPeriodicity) {
  RatioEstimatorConfig config = EnabledConfig();
  config.prune = true;
  config.explore_interval = 8;
  RatioEstimator estimator(1, config);
  int fired = 0;
  for (uint64_t tick = 1; tick <= 64; ++tick) {
    if (estimator.ShouldForceExplore(tick)) ++fired;
  }
  EXPECT_EQ(fired, 8);
  // Prune off: the escape hatch is moot and must never fire.
  RatioEstimator inert(1, EnabledConfig());
  for (uint64_t tick = 1; tick <= 64; ++tick) {
    EXPECT_FALSE(inert.ShouldForceExplore(tick));
  }
}

TEST(RatioEstimatorTest, PruneMaskSparesUntrainedUnusableAndIncumbent) {
  RatioEstimatorConfig config = EnabledConfig();
  config.prune = true;
  RatioEstimator estimator(3, config);
  auto features = CbfFeatures(40, 51);
  for (const auto& f : features) {
    estimator.Observe(0, f, 0.3, 1e-9, 0.7);  // incumbent-to-be
    estimator.Observe(1, f, 0.9, 1e-9, 0.1);  // clearly dominated
    // arm 2 never observed: untrained.
  }
  const SegmentFeatures& f = features[0];
  auto all = [](int) { return true; };
  const double inf = std::numeric_limits<double>::infinity();

  std::vector<uint8_t> mask = estimator.PruneMask(f, inf, all);
  EXPECT_EQ(mask[0], 0) << "incumbent is never dominance-pruned";
  EXPECT_EQ(mask[1], 1) << "0.9 vs 0.3 clears margin + MAE easily";
  EXPECT_EQ(mask[2], 0) << "untrained arms are never pruned";

  // Feasibility bound tighter than every trained prediction: the whole
  // trained pool is gated (the lossless-skip case), untrained spared.
  mask = estimator.PruneMask(f, 0.1, all);
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 1);
  EXPECT_EQ(mask[2], 0);

  // Unusable arms are ignored entirely — and the incumbent role moves to
  // the best remaining trained arm, which then survives.
  mask = estimator.PruneMask(f, inf, [](int a) { return a != 0; });
  EXPECT_EQ(mask[0], 0);
  EXPECT_EQ(mask[1], 0) << "sole trained usable arm is its own incumbent";

  // Prune knob off: all-zero mask no matter what was learned.
  RatioEstimator no_prune(3, EnabledConfig());
  for (const auto& g : features) no_prune.Observe(1, g, 0.9, 1e-9, 0.1);
  mask = no_prune.PruneMask(f, 0.0, all);
  EXPECT_EQ(mask, std::vector<uint8_t>(3, 0));
}

TEST(RatioEstimatorTest, PruneGateNeverLeavesZeroSupportedArms) {
  // The arm-runtime contract under a gate that (wrongly) prunes every
  // arm: without empty_means_skip the gate is ignored outright — a
  // usable arm is still acquired, the bandit keeps learning; with it the
  // acquire returns -1 with nothing pending (the caller-level skip).
  ArmSet arms(compress::DefaultLosslessArms(4));
  bandit::BanditConfig config;
  config.epsilon = 0.0;
  auto bandit = bandit::MakePolicy(bandit::PolicyKind::kEpsilonGreedy,
                                   arms.size(), config);
  auto supports = [](const compress::CodecArm&) { return true; };

  PruneGate gate;
  gate.pruned = [](int) { return true; };
  gate.empty_means_skip = false;
  int picked = AcquireSupportedArmLocked(*bandit, arms, supports, &gate);
  ASSERT_GE(picked, 0);
  EXPECT_EQ(bandit->TotalPending(), 1u);
  bandit->CompletePull(picked, 0.5);

  gate.empty_means_skip = true;
  EXPECT_EQ(AcquireSupportedArmLocked(*bandit, arms, supports, &gate), -1);
  EXPECT_EQ(bandit->TotalPending(), 0u);

  // A partial gate routes around the pruned pick without punishing it:
  // pull counts on pruned arms stay untouched (abandon, not a 0 reward).
  const uint64_t pulls_before = bandit->PullCount(0);
  gate.pruned = [](int a) { return a == 0; };
  gate.empty_means_skip = false;
  picked = AcquireSupportedArmLocked(*bandit, arms, supports, &gate);
  ASSERT_GE(picked, 0);
  EXPECT_NE(picked, 0);
  EXPECT_EQ(bandit->PullCount(0), pulls_before);
  bandit->CompletePull(picked, 0.5);
}

// -------------------------------------------------- selector integration

OnlineConfig SelectorConfig(double target_ratio) {
  OnlineConfig config;
  config.target_ratio = target_ratio;
  config.precision = 4;
  config.lossless_recheck_interval = 16;
  return config;
}

/// Runs `segments` CBF segments through a fresh selector and returns the
/// (arm, payload bytes, reward) outcome sequence.
std::vector<std::tuple<std::string, size_t, double>> RunSelector(
    const OnlineConfig& config, size_t segments, uint64_t seed) {
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));
  data::CbfStream stream(seed);
  std::vector<double> values(256);
  std::vector<std::tuple<std::string, size_t, double>> out;
  for (size_t i = 0; i < segments; ++i) {
    stream.Fill(values);
    auto outcome = selector.Process(i, static_cast<double>(i), values);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (!outcome.ok()) break;
    out.emplace_back(outcome.value().arm_name,
                     outcome.value().segment.SizeBytes(),
                     outcome.value().reward);
  }
  return out;
}

TEST(RatioEstimatorSelectorTest, ObserveAndPresizeAreBehaviorNeutral) {
  // enabled (observe-only), enabled+presize, and scratch trimming must
  // all make byte-for-byte the decisions the estimator-free selector
  // makes — only `prune` may change behavior.
  OnlineConfig off = SelectorConfig(0.1);
  auto baseline = RunSelector(off, 200, 7);

  OnlineConfig observe = off;
  observe.estimator.enabled = true;
  EXPECT_EQ(RunSelector(observe, 200, 7), baseline);

  OnlineConfig presize = observe;
  presize.estimator.presize = true;
  EXPECT_EQ(RunSelector(presize, 200, 7), baseline);

  OnlineConfig trimmed = presize;
  trimmed.scratch_trim_bytes = 128;
  EXPECT_EQ(RunSelector(trimmed, 200, 7), baseline);
}

TEST(RatioEstimatorSelectorTest, PruneOnIsDeterministicAndAlwaysStores) {
  OnlineConfig config = SelectorConfig(0.1);
  config.estimator.enabled = true;
  config.estimator.prune = true;
  config.estimator.presize = true;
  auto first = RunSelector(config, 300, 9);
  ASSERT_EQ(first.size(), 300u) << "every segment must store a payload";
  // Fixed seed + prune on: still fully deterministic (the prune path has
  // no RNG; forced exploration is modular arithmetic on the tick).
  EXPECT_EQ(RunSelector(config, 300, 9), first);
  // The estimator actually observed the run.
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));
  data::CbfStream stream(9);
  std::vector<double> values(256);
  for (size_t i = 0; i < 64; ++i) {
    stream.Fill(values);
    ASSERT_TRUE(selector.Process(i, static_cast<double>(i), values).ok());
  }
  uint64_t observations = 0;
  for (const auto& row : selector.EstimatorReport()) {
    observations += row.observations;
  }
  EXPECT_GT(observations, 0u);
}

TEST(RatioEstimatorSelectorTest, AddLossyArmWarmStartsFromPooledPrior) {
  OnlineConfig config = SelectorConfig(0.1);
  config.estimator.enabled = true;
  config.estimator.warm_start = true;
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));
  data::CbfStream stream(13);
  std::vector<double> values(256);
  for (size_t i = 0; i < 100; ++i) {
    stream.Fill(values);
    ASSERT_TRUE(selector.Process(i, static_cast<double>(i), values).ok());
  }

  compress::CodecArm clone = compress::DefaultLossyArms(4, 0.1)[0];
  clone.name = "warmstart-clone";
  ASSERT_TRUE(selector.AddLossyArm(clone).ok());
  bandit::ArmStats fresh = selector.ExportPolicy().lossy.back();
  // Synthetic pulls from the pooled prior, capped at
  // estimator.warm_start_count_cap (4) — not the optimistic init.
  EXPECT_EQ(fresh.pulls, config.estimator.warm_start_count_cap);
  EXPECT_GE(fresh.value, 0.0);
  EXPECT_LE(fresh.value, 1.0);

  // Control: warm_start off leaves the optimistic untouched prior.
  OnlineConfig control_config = SelectorConfig(0.1);
  control_config.estimator.enabled = true;
  OnlineSelector control(control_config,
                         TargetSpec::AggAccuracy(query::AggKind::kSum));
  data::CbfStream control_stream(13);
  for (size_t i = 0; i < 100; ++i) {
    control_stream.Fill(values);
    ASSERT_TRUE(control.Process(i, static_cast<double>(i), values).ok());
  }
  ASSERT_TRUE(control.AddLossyArm(clone).ok());
  bandit::ArmStats cold = control.ExportPolicy().lossy.back();
  EXPECT_EQ(cold.pulls, 0u);
  EXPECT_DOUBLE_EQ(cold.value, 1.0);
}

TEST(RatioEstimatorSelectorTest, WarmStartPolicyAdoptsEstimatorState) {
  OnlineConfig config = SelectorConfig(0.1);
  config.estimator.enabled = true;
  OnlineSelector trained(config,
                         TargetSpec::AggAccuracy(query::AggKind::kSum));
  data::CbfStream stream(17);
  std::vector<double> values(256);
  for (size_t i = 0; i < 80; ++i) {
    stream.Fill(values);
    ASSERT_TRUE(trained.Process(i, static_cast<double>(i), values).ok());
  }
  OnlineSelector::PolicySnapshot snapshot = trained.ExportPolicy();
  EXPECT_GT(snapshot.lossless_estimator.TotalObservations() +
                snapshot.lossy_estimator.TotalObservations(),
            0u);

  OnlineSelector fresh(config,
                       TargetSpec::AggAccuracy(query::AggKind::kSum));
  uint64_t before = 0;
  for (const auto& row : fresh.EstimatorReport()) {
    before += row.observations;
  }
  EXPECT_EQ(before, 0u);
  fresh.WarmStartPolicy(snapshot, 8);
  uint64_t after = 0;
  for (const auto& row : fresh.EstimatorReport()) {
    after += row.observations;
  }
  EXPECT_GT(after, 0u) << "adoption must carry the per-arm models over";
}

TEST(RatioEstimatorFleetTest, AddShardAdoptsEstimatorFromBusiestShard) {
  FleetConfig config;
  config.shards = 1;
  config.batch_segments = 1;
  config.out_capacity = 256;
  config.online.target_ratio = 1.0;
  config.online.estimator.enabled = true;
  config.online.estimator.warm_start = true;
  FleetNode fleet(config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  fleet.Start();
  data::CbfStream stream(19);
  std::vector<double> values(64);
  for (uint64_t id = 0; id < 48; ++id) {
    stream.Fill(values);
    ASSERT_TRUE(fleet.Ingest(id, values, static_cast<double>(id)).ok());
  }
  while (fleet.batches_out() < 48) std::this_thread::yield();

  ASSERT_TRUE(fleet.AddShard().ok());
  ASSERT_EQ(fleet.NumShards(), 2);
  uint64_t adopted = 0;
  for (const auto& row : fleet.shard_selector(1).EstimatorReport()) {
    adopted += row.observations;
  }
  EXPECT_GT(adopted, 0u)
      << "new shard must inherit the most-observed shard's models";
  fleet.Stop();
  while (fleet.PopCompressed()) {
  }
}

// ----------------------------------------------------- concurrency (TSan)

TEST(RatioEstimatorStressTest, ConcurrentProcessWithPruneAndMutation) {
  OnlineConfig config = SelectorConfig(0.1);
  config.estimator.enabled = true;
  config.estimator.prune = true;
  config.estimator.presize = true;
  config.estimator.warm_start = true;
  config.scratch_trim_bytes = 4096;
  OnlineSelector selector(config,
                          TargetSpec::AggAccuracy(query::AggKind::kSum));

  constexpr int kThreads = 4;
  constexpr size_t kPerThread = 48;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&selector, &failures, t] {
      data::CbfStream stream(100 + static_cast<uint64_t>(t));
      std::vector<double> values(256);
      for (size_t i = 0; i < kPerThread; ++i) {
        stream.Fill(values);
        const uint64_t id =
            static_cast<uint64_t>(t) * kPerThread + i;
        if (!selector.Process(id, static_cast<double>(id), values).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // Concurrent introspection + pool growth against the hot path.
  compress::CodecArm extra;
  extra.name = "stress-gorilla";
  extra.codec = compress::GetCodec(compress::CodecId::kGorilla);
  ASSERT_TRUE(selector.AddLosslessArm(extra).ok());
  for (int i = 0; i < 16; ++i) {
    (void)selector.ExportPolicy();
    (void)selector.EstimatorReport();
    std::this_thread::yield();
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  uint64_t observations = 0;
  for (const auto& row : selector.EstimatorReport()) {
    observations += row.observations;
  }
  EXPECT_GT(observations, 0u);
}

TEST(RatioEstimatorOfflineTest, IngestWithPruneStoresEverySegment) {
  OfflineConfig config;
  config.storage_budget_bytes = 4 << 20;
  config.estimator.enabled = true;
  config.estimator.prune = true;
  config.estimator.presize = true;
  config.scratch_trim_bytes = 8192;
  OfflineNode node(config, TargetSpec::AggAccuracy(query::AggKind::kSum));
  data::CbfStream stream(23);
  std::vector<double> values(256);
  for (uint64_t i = 0; i < 200; ++i) {
    stream.Fill(values);
    ASSERT_TRUE(node.Ingest(i, static_cast<double>(i), values).ok());
  }
  EXPECT_EQ(node.store().count(), 200u);
}

}  // namespace
}  // namespace adaedge::core
