// Randomized invariant sweeps ("chaos" tests): the selection framework
// must uphold its contracts under arbitrary configurations and access
// patterns, not just the curated scenarios of the other suites.

#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "adaedge/core/offline_node.h"
#include "adaedge/core/online_selector.h"
#include "adaedge/data/generators.h"
#include "adaedge/util/rng.h"

namespace adaedge::core {
namespace {

// Invariants checked on every outcome regardless of configuration:
//  - met_target implies the payload actually fits the target budget
//  - the segment always materializes back to the input length
//  - accuracy is a valid probability
void CheckOutcome(const OnlineSelector::Outcome& outcome,
                  size_t input_size, double target_ratio) {
  if (outcome.met_target) {
    EXPECT_LE(compress::CompressionRatio(outcome.segment.SizeBytes(),
                                         input_size),
              target_ratio * 1.02 + 0.003);
  }
  auto values = outcome.segment.Materialize();
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values.value().size(), input_size);
  EXPECT_GE(outcome.accuracy, 0.0);
  EXPECT_LE(outcome.accuracy, 1.0);
}

TEST(OnlineSelectorChaosTest, RandomConfigsUpholdContracts) {
  util::Rng rng(20240715);
  for (int trial = 0; trial < 25; ++trial) {
    OnlineConfig config;
    config.target_ratio = rng.NextUniform(0.05, 1.2);
    config.precision = rng.NextInt(2, 6);
    config.bandit.epsilon = rng.NextUniform(0.0, 0.3);
    config.bandit.seed = rng.NextU64();
    config.bandit.step = rng.NextBool(0.5) ? rng.NextUniform(0.1, 0.9) : 0.0;
    config.policy = static_cast<bandit::PolicyKind>(rng.NextBelow(3));
    config.force_lossy = rng.NextBool(0.2);
    TargetSpec target =
        rng.NextBool(0.5)
            ? TargetSpec::AggAccuracy(static_cast<query::AggKind>(
                  rng.NextBelow(4)))
            : TargetSpec::Throughput();
    OnlineSelector selector(config, target);
    data::CbfStream stream(rng.NextU64(), 128, config.precision);
    size_t segment_length = 128u << rng.NextBelow(4);  // 128..1024
    std::vector<double> segment(segment_length);
    for (uint64_t i = 0; i < 25; ++i) {
      stream.Fill(segment);
      auto outcome = selector.Process(i, i * 0.01, segment);
      if (!outcome.ok()) {
        // Only a genuinely unreachable constraint may fail.
        EXPECT_EQ(outcome.status().code(),
                  util::StatusCode::kUnavailable)
            << "trial " << trial << ": "
            << outcome.status().ToString();
        continue;
      }
      CheckOutcome(outcome.value(), segment_length, config.target_ratio);
    }
  }
}

TEST(OfflineNodeChaosTest, RandomBudgetsAndAccessPatternsNeverLoseData) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    OfflineConfig config;
    config.storage_budget_bytes = (64u << 10) << rng.NextBelow(3);
    config.recode_threshold = rng.NextUniform(0.6, 0.9);
    config.use_lru = rng.NextBool(0.7);
    config.bandit.epsilon = rng.NextUniform(0.0, 0.4);
    config.bandit.seed = rng.NextU64();
    OfflineNode node(config,
                     TargetSpec::AggAccuracy(static_cast<query::AggKind>(
                         rng.NextBelow(4))));
    data::CbfStream stream(rng.NextU64());
    size_t ingested = 0;
    std::vector<double> segment(1024);
    for (uint64_t i = 0; i < 100; ++i) {
      stream.Fill(segment);
      util::Status status = node.Ingest(i, i * 0.01, segment);
      if (!status.ok()) break;  // tiny budgets may legitimately overflow
      ++ingested;
      // Invariants after every ingest.
      ASSERT_LE(node.store().budget()->used(),
                config.storage_budget_bytes)
          << "trial " << trial;
      ASSERT_EQ(node.store().count(), ingested) << "nothing deleted";
      // Random query traffic stirs the LRU order.
      if (rng.NextBool(0.5) && ingested > 0) {
        (void)node.store().Get(rng.NextBelow(ingested));
      }
      // Random segment must always materialize at full length.
      uint64_t probe = rng.NextBelow(ingested);
      auto values = node.store().Read(probe);
      ASSERT_TRUE(values.ok()) << "trial " << trial << " seg " << probe;
      ASSERT_EQ(values.value().size(), 1024u);
    }
    EXPECT_GT(ingested, 10u) << "trial " << trial;
  }
}

}  // namespace
}  // namespace adaedge::core
