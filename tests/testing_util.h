#ifndef ADAEDGE_TESTS_TESTING_UTIL_H_
#define ADAEDGE_TESTS_TESTING_UTIL_H_

#include <cmath>
#include <vector>

#include "adaedge/util/rng.h"

namespace adaedge::testing {

/// Deterministic signal fixtures shared across test suites.

inline std::vector<double> SineSignal(size_t n, double period = 64.0,
                                      double amplitude = 10.0,
                                      double offset = 0.0) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = offset + amplitude * std::sin(2.0 * M_PI * i / period);
  }
  return v;
}

inline std::vector<double> RandomWalk(size_t n, uint64_t seed = 7,
                                      double step = 0.5) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x += rng.NextGaussian() * step;
    v[i] = x;
  }
  return v;
}

inline std::vector<double> ConstantSignal(size_t n, double value = 3.25) {
  return std::vector<double>(n, value);
}

inline std::vector<double> SteppedSignal(size_t n, size_t step_len = 16) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>((i / step_len) % 7) * 2.5;
  }
  return v;
}

inline std::vector<double> NoisySignal(size_t n, uint64_t seed = 11) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng.NextUniform(-100.0, 100.0);
  return v;
}

/// Rounds every value to `digits` decimal digits, making the fixture exactly
/// representable for BUFF/Sprintz at that precision.
inline std::vector<double> QuantizeDecimals(std::vector<double> v,
                                            int digits) {
  double scale = std::pow(10.0, digits);
  for (double& x : v) x = std::round(x * scale) / scale;
  return v;
}

}  // namespace adaedge::testing

#endif  // ADAEDGE_TESTS_TESTING_UTIL_H_
